let override = Atomic.make None

(* Pool observability.  Outcome counters (maps, ok, failed, recovered,
   retries) are deterministic for a deterministic workload; the
   scheduler counters (steals, steal_fails, splits) and the busy/idle
   timers depend on runtime interleaving and are documented as such —
   they describe how the work moved, never what it computed. *)
let m_maps = Metrics.counter "pool.maps"
let m_ok = Metrics.counter "pool.jobs.ok"
let m_failed = Metrics.counter "pool.jobs.failed"
let m_recovered = Metrics.counter "pool.jobs.recovered"
let m_retries = Metrics.counter "pool.retries"
let m_steals = Metrics.counter "pool.steals"
let m_steal_fails = Metrics.counter "pool.steal_fails"
let m_splits = Metrics.counter "pool.splits"
let t_busy = Metrics.timer "pool.worker.busy"
let t_idle = Metrics.timer "pool.worker.idle"

type sched_stats = { steals : int; steal_fails : int; splits : int }

let scheduler_stats () =
  {
    steals = Metrics.value m_steals;
    steal_fails = Metrics.value m_steal_fails;
    splits = Metrics.value m_splits;
  }

type strategy = Work_stealing | Fixed_chunk

let env_strategy () =
  match Sys.getenv_opt "GAT_SCHED" with
  | Some ("fixed" | "fixed-chunk") -> Some Fixed_chunk
  | Some ("ws" | "work-stealing") -> Some Work_stealing
  | _ -> None

let resolve_strategy = function
  | Some s -> s
  | None -> (
      match env_strategy () with Some s -> s | None -> Work_stealing)

let set_default_jobs j =
  (match j with
  | Some j when j < 1 -> invalid_arg "Pool.set_default_jobs: jobs must be >= 1"
  | _ -> ());
  Atomic.set override j

let env_jobs () =
  match Sys.getenv_opt "GAT_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some j
      | _ -> None)

let jobs () =
  match Atomic.get override with
  | Some j -> j
  | None -> (
      match env_jobs () with
      | Some j -> j
      | None -> Domain.recommended_domain_count ())

let with_lock m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace ()
      in
      Mutex.unlock m;
      Printexc.raise_with_backtrace e bt

(* ---- index ranges ----

   A unit of schedulable work is a half-open index range [lo, hi)
   packed into one immutable int, so a deque cell is a single atomic
   word and range hand-off needs no allocation.  31 bits per bound
   caps a work-stealing map at 2^31 - 1 elements; larger inputs (far
   beyond any in-memory sweep) fall back to the fixed-chunk path,
   which has no packing. *)

let range_bits = 31
let range_mask = (1 lsl range_bits) - 1
let pack lo hi = (lo lsl range_bits) lor hi
let range_lo r = r lsr range_bits
let range_hi r = r land range_mask

(* ---- Chase-Lev deque of ranges ----

   One per worker.  The owner pushes and pops at the bottom without a
   CAS except on the last element; thieves steal from the top with a
   CAS on the monotonic [top] counter (no ABA).  Cells are atomic so
   every access is well-defined under the OCaml memory model — the
   textbook algorithm's acquire/release reasoning carries over to
   seq-cst atomics unchanged.

   Capacity is fixed: splitting a popped range in half pushes at most
   one entry per halving, so a deque holds O(log n) ranges of
   geometrically decreasing size.  If a push ever finds the deque full
   the caller simply runs the range inline — graceful degradation, no
   growth path. *)

module Deque = struct
  let capacity = 64
  let mask = capacity - 1

  type t = {
    top : int Atomic.t;  (* next index to steal; only ever increments *)
    bottom : int Atomic.t;  (* next free slot for the owner *)
    cells : int Atomic.t array;
  }

  let create () =
    {
      top = Atomic.make 0;
      bottom = Atomic.make 0;
      cells = Array.init capacity (fun _ -> Atomic.make 0);
    }

  (* Owner only. *)
  let push d v =
    let b = Atomic.get d.bottom in
    let t = Atomic.get d.top in
    if b - t >= capacity then false
    else begin
      Atomic.set d.cells.(b land mask) v;
      Atomic.set d.bottom (b + 1);
      true
    end

  (* Owner only: take the most recently pushed range (LIFO keeps the
     owner on the small, cache-warm end; thieves meet it at the old,
     large end). *)
  let pop d =
    let b = Atomic.get d.bottom - 1 in
    Atomic.set d.bottom b;
    let t = Atomic.get d.top in
    if b < t then begin
      Atomic.set d.bottom t;
      None
    end
    else begin
      let v = Atomic.get d.cells.(b land mask) in
      if b > t then Some v
      else begin
        (* Single element left: race the thieves for it. *)
        let won = Atomic.compare_and_set d.top t (t + 1) in
        Atomic.set d.bottom (t + 1);
        if won then Some v else None
      end
    end

  (* Any thief. *)
  let steal d =
    let t = Atomic.get d.top in
    let b = Atomic.get d.bottom in
    if t >= b then None
    else
      let v = Atomic.get d.cells.(t land mask) in
      if Atomic.compare_and_set d.top t (t + 1) then Some v else None
end

(* ---- shared worker plumbing ---- *)

(* Run one range: timed into the caller's busy accumulator and, when
   tracing, recorded as one span.  Ranges are coarse while the pool is
   balanced, so per-range spans stay cheap. *)
let run_range ~busy ~lo ~len body =
  let t0 = Metrics.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      busy := Int64.add !busy (Int64.sub (Metrics.now_ns ()) t0))
    (fun () ->
      if Trace.on () then
        Trace.span
          ~args:[ ("lo", Trace.I lo); ("len", Trace.I len) ]
          "pool.range" body
      else body ())

(* Account a worker's lifetime: busy is what its ranges measured, idle
   is the remainder (ramp-up, steal hunting, end-of-map drain). *)
let with_worker_accounting work =
  let t0 = Metrics.now_ns () in
  let busy = ref 0L in
  Fun.protect
    ~finally:(fun () ->
      let life = Int64.sub (Metrics.now_ns ()) t0 in
      Metrics.timer_add t_busy (Int64.to_int !busy);
      Metrics.timer_add t_idle
        (Int64.to_int (Int64.max 0L (Int64.sub life !busy))))
    (fun () -> work busy)

(* Seeds the per-map victim shuffle: deterministic for a given map
   ordinal so two identical runs visit victims in the same order (the
   actual steal outcomes still depend on interleaving). *)
let map_ordinal = Atomic.make 0

(* The work-stealing worker loop.

   Each worker owns one deque seeded with a contiguous slice of the
   input.  It pops from its own bottom; a range wider than the current
   grain is split in half, the far half pushed back (stealable), the
   near half kept — so the deque always exposes the largest remaining
   ranges at its top, and a single steal takes roughly half the
   victim's remaining indices.  The grain adapts: coarse
   ([n / (4 jobs)]) while every worker has local work, collapsing to a
   single element as soon as any worker is hungry, so a skewed tail is
   carved fine enough to share.  Workers with an empty deque hunt in a
   randomized victim order until the map has no unfinished index
   ([remaining] = 0) or the map is halting. *)
let ws_worker ~deques ~remaining ~hungry ~grain ~halt ~exec ~seed ~busy w =
  let j = Array.length deques in
  let d = deques.(w) in
  let rng = Rng.create (Hashtbl.hash (seed, w, j)) in
  let order = Array.init j Fun.id in
  let rec handle lo hi =
    let len = hi - lo in
    let g = if Atomic.get hungry > 0 then 1 else grain in
    let mid = lo + (len / 2) in
    if len > g && Deque.push d (pack mid hi) then begin
      Metrics.incr m_splits;
      handle lo mid
    end
    else begin
      run_range ~busy ~lo ~len (fun () -> exec lo hi);
      ignore (Atomic.fetch_and_add remaining (-len))
    end
  in
  let steal_once () =
    Rng.shuffle rng order;
    let found = ref None in
    Array.iter
      (fun v ->
        if !found = None && v <> w then
          match Deque.steal deques.(v) with
          | Some r ->
              Metrics.incr m_steals;
              if Trace.on () then
                Trace.instant "pool.steal"
                  ~args:
                    [
                      ("victim", Trace.I v);
                      ("lo", Trace.I (range_lo r));
                      ("len", Trace.I (range_hi r - range_lo r));
                    ];
              found := Some r
          | None -> ())
      order;
    !found
  in
  let hunt () =
    ignore (Atomic.fetch_and_add hungry 1);
    Fun.protect
      ~finally:(fun () -> ignore (Atomic.fetch_and_add hungry (-1)))
      (fun () ->
        let rec go fails =
          if halt () || Atomic.get remaining <= 0 then None
          else
            match steal_once () with
            | Some r -> Some r
            | None ->
                Metrics.incr m_steal_fails;
                (* Back off after repeated dry scans: on an
                   oversubscribed host a spinning hunter competes for
                   the very core the busy worker needs to produce
                   stealable work. *)
                if fails >= 2 then Unix.sleepf 50e-6
                else Domain.cpu_relax ();
                go (fails + 1)
        in
        go 0)
  in
  let rec loop () =
    if not (halt ()) then
      match Deque.pop d with
      | Some r ->
          handle (range_lo r) (range_hi r);
          loop ()
      | None -> (
          match hunt () with
          | Some r ->
              handle (range_lo r) (range_hi r);
              loop ()
          | None -> ())
  in
  loop ()

(* The legacy scheduler: fixed chunks handed out from one shared
   counter.  Kept as an explicit strategy so the benchmark can measure
   work-stealing against it, and as the fallback for inputs too large
   to pack into ranges. *)
let fixed_worker ~next ~n ~chunk ~halt ~exec ~busy _w =
  let continue_ = ref true in
  while !continue_ do
    let start = Atomic.fetch_and_add next chunk in
    if start >= n || halt () then continue_ := false
    else
      let stop = min n (start + chunk) in
      run_range ~busy ~lo:start ~len:(stop - start) (fun () -> exec start stop)
  done

(* ---- the unified supervised core loop ----

   Both [map] and [map_result] run their workers through here; they
   differ only in the [exec] closure (write plain results / record
   supervised outcomes) and the [halt] predicate (nothing / the
   failure budget).  A worker whose body raises parks the exception in
   [failure], which halts every other worker; the first exception is
   re-raised in the caller after all domains have joined. *)
let run_parallel ?strategy ~jobs:j ~n ~grain_hint ~halt ~exec () =
  Metrics.incr m_maps;
  let strategy =
    if n > range_mask then Fixed_chunk else resolve_strategy strategy
  in
  let failure = Atomic.make None in
  let halt () = halt () || Atomic.get failure <> None in
  let body =
    match strategy with
    | Work_stealing ->
        let deques = Array.init j (fun _ -> Deque.create ()) in
        (* Contiguous initial partition: one slice per worker, same
           locality as the fixed chunking it replaces. *)
        let per = n / j and rem = n mod j in
        let lo = ref 0 in
        Array.iteri
          (fun w d ->
            let len = per + if w < rem then 1 else 0 in
            if len > 0 then ignore (Deque.push d (pack !lo (!lo + len)));
            lo := !lo + len)
          deques;
        let remaining = Atomic.make n in
        let hungry = Atomic.make 0 in
        let grain =
          match grain_hint with
          | Some c -> max 1 c
          | None -> max 1 (n / (j * 4))
        in
        let seed = Atomic.fetch_and_add map_ordinal 1 in
        fun busy w ->
          ws_worker ~deques ~remaining ~hungry ~grain ~halt ~exec ~seed ~busy w
    | Fixed_chunk ->
        let chunk =
          match grain_hint with
          | Some c -> max 1 c
          | None -> max 1 (n / (j * 8))
        in
        let next = Atomic.make 0 in
        fun busy w -> fixed_worker ~next ~n ~chunk ~halt ~exec ~busy w
  in
  let worker w () =
    with_worker_accounting @@ fun busy ->
    try body busy w
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      ignore (Atomic.compare_and_set failure None (Some (e, bt)))
  in
  let domains = List.init (j - 1) (fun i -> Domain.spawn (worker (i + 1))) in
  worker 0 ();
  List.iter Domain.join domains;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* ---- unboxed result buffer ----

   Results land in a plain ['b array] created lazily from the first
   computed value (there is no zero element for an arbitrary ['b]), so
   a map costs one allocation for the whole buffer instead of one
   [Some] per element plus a full unwrap pass.  Distinct indices are
   written by distinct workers; [Domain.join] publishes the writes. *)

type 'b buffer = { cell : 'b array option Atomic.t; size : int }

let buffer n = { cell = Atomic.make None; size = n }

let buffer_store b i v =
  let arr =
    match Atomic.get b.cell with
    | Some arr -> arr
    | None -> (
        let arr = Array.make b.size v in
        if Atomic.compare_and_set b.cell None (Some arr) then arr
        else
          match Atomic.get b.cell with
          | Some arr -> arr
          | None -> assert false)
  in
  arr.(i) <- v;
  arr

let buffer_contents b =
  match Atomic.get b.cell with Some arr -> arr | None -> [||]

(* ---- map ---- *)

let map ?strategy ?jobs:requested ?chunk f input =
  let n = Array.length input in
  let j = match requested with Some j -> max 1 j | None -> jobs () in
  let j = min j n in
  if j <= 1 then Array.map f input
  else begin
    let buf = buffer n in
    let exec lo hi =
      let arr = buffer_store buf lo (f input.(lo)) in
      for i = lo + 1 to hi - 1 do
        arr.(i) <- f input.(i)
      done
    in
    run_parallel ?strategy ~jobs:j ~n ~grain_hint:chunk
      ~halt:(fun () -> false)
      ~exec ();
    buffer_contents buf
  end

let map_list ?jobs ?chunk f l =
  Array.to_list (map ?jobs ?chunk f (Array.of_list l))

(* ---- supervised map ---- *)

type exn_info = { exn : exn; backtrace : string; attempts : int }

exception
  Budget_exceeded of { failed : int; budget : int; last : exn_info }

let () =
  Printexc.register_printer (function
    | Budget_exceeded { failed; budget; last } ->
        Some
          (Printf.sprintf
             "Gat_util.Pool.Budget_exceeded: %d failures (budget %d), last: %s"
             failed budget
             (Printexc.to_string last.exn))
    | _ -> None)

(* One element, with bounded in-place retry: [retries] extra attempts
   after the first.  The recorded [attempts] is the total number of
   tries made. *)
let eval_supervised ~retries f x =
  let rec go attempt =
    match f x with
    | v ->
        (* Successes that needed a retry used to be indistinguishable
           from first-try successes; count them so flaky-but-recovered
           variants are visible ([pool.jobs.recovered]). *)
        if attempt > 1 then begin
          Metrics.incr m_recovered;
          Metrics.incr ~by:(attempt - 1) m_retries
        end;
        Metrics.incr m_ok;
        Ok v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        if attempt <= retries then go (attempt + 1)
        else begin
          Metrics.incr m_failed;
          Metrics.incr ~by:(attempt - 1) m_retries;
          Error
            {
              exn = e;
              backtrace = Printexc.raw_backtrace_to_string bt;
              attempts = attempt;
            }
        end
  in
  go 1

let map_result ?strategy ?jobs:requested ?chunk ?(retries = 1) ?max_failures f
    input =
  if retries < 0 then invalid_arg "Pool.map_result: retries must be >= 0";
  let n = Array.length input in
  let j = match requested with Some j -> max 1 j | None -> jobs () in
  let j = min j n in
  let failed = Atomic.make 0 in
  (* Set once the failure count passes the budget; workers drain and
     the caller raises. *)
  let over : exn_info option Atomic.t = Atomic.make None in
  let eval x =
    let r = eval_supervised ~retries f x in
    (match r with
    | Ok _ -> ()
    | Error info -> (
        let c = 1 + Atomic.fetch_and_add failed 1 in
        match max_failures with
        | Some budget when c > budget ->
            ignore (Atomic.compare_and_set over None (Some info))
        | _ -> ()));
    r
  in
  let buf = buffer n in
  if j <= 1 then begin
    let i = ref 0 in
    while !i < n && Atomic.get over = None do
      ignore (buffer_store buf !i (eval input.(!i)));
      incr i
    done
  end
  else begin
    let exec lo hi =
      let i = ref lo in
      while !i < hi && Atomic.get over = None do
        ignore (buffer_store buf !i (eval input.(!i)));
        incr i
      done
    in
    run_parallel ?strategy ~jobs:j ~n ~grain_hint:chunk
      ~halt:(fun () -> Atomic.get over <> None)
      ~exec ()
  end;
  match Atomic.get over with
  | Some last ->
      raise
        (Budget_exceeded
           {
             failed = Atomic.get failed;
             budget = Option.get max_failures;
             last;
           })
  | None -> buffer_contents buf
