let flag = Atomic.make false
let installed = ref false

let request () = Atomic.set flag true
let requested () = Atomic.get flag
let reset () = Atomic.set flag false

let install () =
  if not !installed then begin
    installed := true;
    try Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> request ()))
    with Invalid_argument _ | Sys_error _ -> ()
  end
