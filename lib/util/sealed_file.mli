(** MD5-sealed atomic file entries — the shared envelope of every
    persistent cache file ([.sweep], [.ckpt], [.art]).

    A sealed file is a line-oriented text payload closed by an ["end"]
    line and an [md5] line covering every byte before it.  {!unseal}
    verifies the digest, so any truncation or byte flip anywhere in the
    file fails verification and reads as a miss instead of wrong data.
    {!publish} writes a private temp file and renames it over the final
    name: readers racing a writer (or a SIGKILL between the syscalls)
    see the old entry or the new one, never a partial write. *)

val seal : Buffer.t -> unit
(** Append the ["end"]/[md5] trailer over the buffer's current
    contents. *)

val publish : path:string -> Buffer.t -> unit
(** Atomically write the buffer to [path] (directory created as
    needed).  Raises [Sys_error] on I/O failure — callers own their
    degradation policy. *)

val read_raw : string -> string
(** The file's bytes, unverified.  Raises [Sys_error]. *)

val unseal : string -> string option
(** The payload with the trailer stripped, or [None] if the trailer is
    absent or the digest does not match. *)

val read : string -> string option
(** {!read_raw} + {!unseal}; [None] also on I/O failure. *)
