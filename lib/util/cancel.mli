(** Cooperative cancellation for long-running loops.

    {!install} replaces the default SIGINT behaviour with a flag set;
    loops that can stop cleanly (the sweep engine, between blocks) poll
    {!requested} and shut down at the next safe point — after flushing
    a checkpoint — instead of dying mid-write.  Install it only in
    binaries that actually poll, or Ctrl-C stops stopping things. *)

val install : unit -> unit
(** Route SIGINT to the flag (idempotent; ignores platforms without
    signal support). *)

val requested : unit -> bool
(** True once SIGINT was received (or {!request} called). *)

val request : unit -> unit
(** Set the flag programmatically (tests). *)

val reset : unit -> unit
(** Clear the flag. *)
