(* Fleet telemetry snapshots.

   A sharded sweep is many processes on many machines; each one's
   trace buffers, counters and latency histograms die with it unless
   they are made durable.  This module gives every coordinator/worker
   a single sealed, atomically-renamed snapshot file
   ([<host>.<pid>.telem]) in the coordination directory, refreshed on
   the same per-block cadence as lease renewal and on every exit
   path — so a SIGKILLed worker's last flushed snapshot survives its
   death exactly like its [.ckpt] prefix does.  The crash flight
   recorder is the same payload under a [.crash] name, written from
   the fatal-error and fatal-signal paths.

   The payload is line-oriented text inside the standard
   {!Sealed_file} envelope: a header (host, pid, the monotonic→wall
   epoch anchor, dropped-event count, an optional crash note),
   then tagged lines — [counter NAME V], [timer NAME EVENTS NS],
   [hist NAME <sparse buckets>] — and finally the raw trace events,
   one JSON object per line ({!Trace.serialize_events}).  A corrupt
   or truncated snapshot fails the seal or the parse and is skipped
   and counted by readers, never trusted partially.

   Clock alignment: monotonic timestamps from different machines (or
   different boots) share no origin, so each snapshot carries one
   [(anchor_mono_ns, anchor_wall_ns)] pair sampled back-to-back at
   enable time.  The merge maps every event through
   [wall = anchor_wall + (ts - anchor_mono)], which aligns processes
   to within the clocks' skew without requiring synchronized
   monotonic origins. *)

let magic = "gat-telem 1"
let m_flushes = Metrics.counter "telem.flushes"
let m_skipped = Metrics.counter "telem.snapshots_skipped"
let m_crashes = Metrics.counter "telem.crashes"

type snapshot = {
  host : string;
  pid : int;
  anchor_mono_ns : int64;
  anchor_wall_ns : int64;
  captured_wall_ns : int64;  (* capture instant, anchor-aligned wall ns *)
  dropped : int;
  note : string;  (* crash reason; empty for periodic snapshots *)
  counters : (string * int) list;
  timers : (string * int * int) list;  (* name, events, total ns *)
  histograms : (string * Histogram.Log.t) list;
  events : Trace.event list;
}

(* ---- session state ---- *)

type session = {
  dir : string;
  s_host : string;
  s_pid : int;
  s_anchor_mono_ns : int64;
  s_anchor_wall_ns : int64;
}

let session : session option ref = ref None
let lock = Mutex.create ()

(* Whether this module turned span recording on (as opposed to the CLI
   having registered a [--trace] output first); owned recording is
   turned back off when the session ends. *)
let trace_owned = ref false

let enable ~dir =
  let s =
    {
      dir;
      s_host = Unix.gethostname ();
      s_pid = Unix.getpid ();
      (* Sampled back-to-back: the pair is this process's epoch anchor. *)
      s_anchor_mono_ns = Metrics.now_ns ();
      s_anchor_wall_ns = Int64.of_float (Unix.gettimeofday () *. 1e9);
    }
  in
  Mutex.lock lock;
  session := Some s;
  (* A telemetry session implies span recording: a worker started
     without [--trace] still fills its (bounded) ring buffers, so its
     snapshots carry events for the fleet merge.  [Trace.enable] never
     clobbers an output file registered by [--trace]. *)
  if not (Trace.on ()) then begin
    Trace.enable ();
    trace_owned := true
  end;
  Mutex.unlock lock

let disable () =
  Mutex.lock lock;
  session := None;
  if !trace_owned then begin
    Trace.disable ();
    trace_owned := false
  end;
  Mutex.unlock lock

let active () =
  Mutex.lock lock;
  let s = !session in
  Mutex.unlock lock;
  s

let dir () = Option.map (fun s -> s.dir) (active ())

(* ---- capture ---- *)

let capture ?(note = "") () =
  let s =
    match active () with
    | Some s -> s
    | None ->
        {
          dir = ".";
          s_host = Unix.gethostname ();
          s_pid = Unix.getpid ();
          s_anchor_mono_ns = Metrics.now_ns ();
          s_anchor_wall_ns = Int64.of_float (Unix.gettimeofday () *. 1e9);
        }
  in
  {
    host = s.s_host;
    pid = s.s_pid;
    anchor_mono_ns = s.s_anchor_mono_ns;
    anchor_wall_ns = s.s_anchor_wall_ns;
    captured_wall_ns =
      Int64.add s.s_anchor_wall_ns
        (Int64.sub (Metrics.now_ns ()) s.s_anchor_mono_ns);
    dropped = Trace.dropped ();
    note;
    counters = Metrics.counters_snapshot ();
    timers =
      List.map
        (fun (name, events, seconds) ->
          (name, events, int_of_float (seconds *. 1e9)))
        (Metrics.timers_snapshot ());
    histograms = Metrics.histograms_snapshot ();
    events = Trace.events ();
  }

(* ---- serialization ---- *)

let oneline s =
  String.map (fun c -> match c with '\n' | '\r' -> ' ' | c -> c) s

let to_payload snap =
  let b = Buffer.create 4096 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  line "%s" magic;
  line "host %s" (oneline snap.host);
  line "pid %d" snap.pid;
  line "anchor_mono_ns %Ld" snap.anchor_mono_ns;
  line "anchor_wall_ns %Ld" snap.anchor_wall_ns;
  line "captured_wall_ns %Ld" snap.captured_wall_ns;
  line "dropped %d" snap.dropped;
  if snap.note <> "" then line "note %s" (oneline snap.note);
  List.iter (fun (name, v) -> line "counter %s %d" name v) snap.counters;
  List.iter
    (fun (name, events, ns) -> line "timer %s %d %d" name events ns)
    snap.timers;
  List.iter
    (fun (name, h) -> line "hist %s %s" name (Histogram.Log.serialize h))
    snap.histograms;
  let n = List.length snap.events in
  line "events %d" n;
  Buffer.add_string b (Trace.serialize_events snap.events);
  b

let split2 s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i ->
      (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let of_payload body =
  match String.split_on_char '\n' body with
  | m :: rest when m = magic -> (
      let host = ref "" and pid = ref (-1) in
      let amono = ref None and awall = ref None in
      let captured = ref None in
      let dropped = ref 0 and note = ref "" in
      let counters = ref [] and timers = ref [] and hists = ref [] in
      let events = ref [] in
      try
        let rec go = function
          | [] | [ "" ] -> ()
          | l :: tl -> (
              let tag, rest = split2 l in
              match tag with
              | "host" ->
                  host := rest;
                  go tl
              | "pid" ->
                  pid := int_of_string rest;
                  go tl
              | "anchor_mono_ns" ->
                  amono := Some (Int64.of_string rest);
                  go tl
              | "anchor_wall_ns" ->
                  awall := Some (Int64.of_string rest);
                  go tl
              | "captured_wall_ns" ->
                  captured := Some (Int64.of_string rest);
                  go tl
              | "dropped" ->
                  dropped := int_of_string rest;
                  go tl
              | "note" ->
                  note := rest;
                  go tl
              | "counter" ->
                  let name, v = split2 rest in
                  counters := (name, int_of_string v) :: !counters;
                  go tl
              | "timer" -> (
                  match String.split_on_char ' ' rest with
                  | [ name; ev; ns ] ->
                      timers :=
                        (name, int_of_string ev, int_of_string ns) :: !timers;
                      go tl
                  | _ -> raise Exit)
              | "hist" -> (
                  let name, ser = split2 rest in
                  match Histogram.Log.parse ser with
                  | Some h ->
                      hists := (name, h) :: !hists;
                      go tl
                  | None -> raise Exit)
              | "events" -> (
                  let n = int_of_string rest in
                  if n < 0 || List.length tl < n then raise Exit;
                  let ev_lines = List.filteri (fun i _ -> i < n) tl in
                  let trailing = List.filteri (fun i _ -> i >= n) tl in
                  if List.exists (fun l -> l <> "") trailing then raise Exit;
                  match Trace.parse_events (String.concat "\n" ev_lines) with
                  | Some evs when List.length evs = n -> events := evs
                  | _ -> raise Exit)
              | _ -> raise Exit)
        in
        go rest;
        match (!amono, !awall) with
        | Some anchor_mono_ns, Some anchor_wall_ns when !pid >= 0 ->
            Some
              {
                host = !host;
                pid = !pid;
                anchor_mono_ns;
                anchor_wall_ns;
                captured_wall_ns =
                  Option.value ~default:anchor_wall_ns !captured;
                dropped = !dropped;
                note = !note;
                counters = List.rev !counters;
                timers = List.rev !timers;
                histograms = List.rev !hists;
                events = !events;
              }
        | _ -> None
      with Exit | Failure _ -> None)
  | _ -> None

(* ---- files ---- *)

let snapshot_path ~dir ~host ~pid =
  Filename.concat dir (Printf.sprintf "%s.%d.telem" host pid)

let crash_path ~dir ~host ~pid =
  Filename.concat dir (Printf.sprintf "%s.%d.crash" host pid)

let is_telem_file name = Filename.check_suffix name ".telem"
let is_crash_file name = Filename.check_suffix name ".crash"

let publish_to path snap =
  let buf = to_payload snap in
  Sealed_file.seal buf;
  try
    Sealed_file.publish ~path buf;
    true
  with Sys_error _ | Unix.Unix_error _ -> false

(* Telemetry must never take a sweep down: both flush and crash_dump
   swallow I/O failure. *)
let flush () =
  match active () with
  | None -> ()
  | Some s ->
      let snap = capture () in
      if publish_to (snapshot_path ~dir:s.dir ~host:s.s_host ~pid:s.s_pid) snap
      then Metrics.incr m_flushes

let crash_dump ~reason =
  match active () with
  | None -> ()
  | Some s ->
      let snap = capture ~note:reason () in
      if publish_to (crash_path ~dir:s.dir ~host:s.s_host ~pid:s.s_pid) snap
      then Metrics.incr m_crashes

(* Fatal signals (SIGTERM) dump the flight record, then restore the
   default disposition and re-deliver so the exit status still says
   "killed by signal" to whoever is waiting. *)
let install_signal_dump () =
  let dump_and_die signo =
    crash_dump ~reason:(Printf.sprintf "fatal signal %d" signo);
    Sys.set_signal signo Sys.Signal_default;
    Unix.kill (Unix.getpid ()) signo
  in
  try Sys.set_signal Sys.sigterm (Sys.Signal_handle dump_and_die)
  with Invalid_argument _ | Sys_error _ -> ()

(* ---- reading a fleet's snapshots ---- *)

let read_file path =
  match Sealed_file.read path with
  | None -> None
  | Some body -> of_payload body

let load_matching pred d =
  match Sys.readdir d with
  | exception Sys_error _ -> ([], 0)
  | names ->
      let skipped = ref 0 in
      let snaps =
        Array.to_list names
        |> List.filter pred
        |> List.sort compare
        |> List.filter_map (fun name ->
               match read_file (Filename.concat d name) with
               | Some s -> Some s
               | None ->
                   incr skipped;
                   Metrics.incr m_skipped;
                   None)
      in
      (snaps, !skipped)

let load_dir d = load_matching is_telem_file d
let load_crashes d = load_matching is_crash_file d

let crash_files d =
  match Sys.readdir d with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names |> List.filter is_crash_file |> List.sort compare
      |> List.map (Filename.concat d)

(* One snapshot per (host,pid): a process can leave both a periodic
   [.telem] and a [.crash] with overlapping ring buffers, and both are
   cumulative — keep the fullest (counters only grow, so the largest
   counter total is the latest capture). *)
let dedupe snaps =
  let weight s =
    List.fold_left (fun acc (_, v) -> acc + v) (List.length s.events) s.counters
  in
  let best : (string * int, snapshot) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun s ->
      let k = (s.host, s.pid) in
      match Hashtbl.find_opt best k with
      | Some prev when weight prev >= weight s -> ()
      | _ -> Hashtbl.replace best k s)
    snaps;
  Hashtbl.fold (fun _ s acc -> s :: acc) best []
  |> List.sort (fun a b -> compare (a.host, a.pid) (b.host, b.pid))

let to_process s =
  {
    Trace.p_host = s.host;
    p_pid = s.pid;
    p_anchor_mono_ns = s.anchor_mono_ns;
    p_anchor_wall_ns = s.anchor_wall_ns;
    p_events = s.events;
    p_counters = s.counters;
    p_dropped = s.dropped;
  }

(* Merge a fleet directory into one Chrome trace.  Periodic snapshots
   and crash records both contribute; each (host,pid) appears once. *)
let merge_dir d =
  let telem, sk1 = load_dir d in
  let crash, sk2 = load_crashes d in
  let procs = List.map to_process (dedupe (telem @ crash)) in
  let body, events = Trace.render_merged procs in
  (body, events, List.length procs, sk1 + sk2)

(* Fold foreign processes' counters and histograms into the live
   registries, so the coordinator's final [gat stats] / [GAT_STATS]
   output is fleet-wide.  The caller's own snapshot (same host+pid)
   is excluded — its numbers are already live. *)
let absorb_foreign snaps =
  let self_host = Unix.gethostname () and self_pid = Unix.getpid () in
  List.iter
    (fun s ->
      if not (s.host = self_host && s.pid = self_pid) then begin
        List.iter (fun (name, v) -> if v > 0 then Metrics.bump ~by:v name) s.counters;
        List.iter (fun (name, h) -> Metrics.merge_histogram name h) s.histograms
      end)
    snaps
