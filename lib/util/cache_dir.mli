(** Resolution of the persistent cache root.

    Every on-disk cache — sweep entries, checkpoints, the artifact
    store — lives under one root directory so maintenance ([gat cache
    stats|clear|gc]) sees all of it.  Resolution order: [GAT_CACHE_DIR],
    then [XDG_CACHE_HOME/gat], then [~/.cache/gat], then a
    temp-directory fallback. *)

val root : unit -> string
(** The cache root (not created; see {!ensure}). *)

val ensure : string -> unit
(** [mkdir -p], silently tolerating races and pre-existing paths. *)
