(** Fleet telemetry snapshots: durable, mergeable per-process
    observability for sharded sweeps.

    Every coordinator/worker periodically publishes one MD5-sealed,
    atomically-renamed snapshot file ([<host>.<pid>.telem]) into the
    coordination directory — on the same per-block cadence as lease
    renewal, plus on every exit path — carrying its counters, timers,
    log-bucketed latency histograms, trace ring buffers and a
    monotonic→wall epoch anchor.  The crash flight recorder writes
    the same payload to [<host>.<pid>.crash] from the fatal-error and
    fatal-signal paths.  Readers skip-and-count corrupt or truncated
    snapshots ([telem.snapshots_skipped]); a SIGKILLed worker's last
    flushed snapshot still merges.

    Metrics: [telem.flushes], [telem.snapshots_skipped],
    [telem.crashes]. *)

type snapshot = {
  host : string;
  pid : int;
  anchor_mono_ns : int64;
      (** Monotonic clock at the process's anchor instant. *)
  anchor_wall_ns : int64;
      (** Wall clock (ns since the Unix epoch) at the same instant;
          the pair aligns this process's events to other machines'. *)
  captured_wall_ns : int64;
      (** When this snapshot was captured, as anchor-aligned wall ns —
          [gat monitor] derives rates and staleness from it. *)
  dropped : int;  (** Trace events dropped at buffer capacity. *)
  note : string;  (** Crash reason; empty for periodic snapshots. *)
  counters : (string * int) list;
  timers : (string * int * int) list;  (** (name, events, total ns). *)
  histograms : (string * Histogram.Log.t) list;
  events : Trace.event list;
}

(** {2 Session control} *)

val enable : dir:string -> unit
(** Start a telemetry session publishing into [dir]; samples this
    process's epoch anchor (back-to-back monotonic + wall reads) and
    turns on span recording into the bounded ring buffers if it is not
    already on — so a worker started without [--trace] still
    contributes events to the fleet merge. *)

val disable : unit -> unit
(** End the session; span recording that {!enable} itself turned on
    is turned back off (a [--trace] registration is left alone). *)

val dir : unit -> string option
(** The active session's directory, if any. *)

val flush : unit -> unit
(** Capture and atomically publish [<host>.<pid>.telem] into the
    session directory.  No-op without a session; swallows I/O errors
    (telemetry never takes a sweep down).  Called on the same
    per-block cadence as lease renewal. *)

val crash_dump : reason:string -> unit
(** Capture and publish [<host>.<pid>.crash] with [reason] as the
    snapshot note — the crash flight recorder, called from the
    top-level fatal-error catch. *)

val install_signal_dump : unit -> unit
(** Install a SIGTERM handler that writes the crash flight record,
    restores the default disposition and re-delivers the signal (the
    exit status still reports death-by-signal). *)

(** {2 Capture and wire format} *)

val capture : ?note:string -> unit -> snapshot
(** This process's current telemetry (live registries + trace
    buffers).  Uses the active session's identity and anchor, or
    fresh ones without a session. *)

val to_payload : snapshot -> Buffer.t
(** Line-oriented payload, ready for {!Sealed_file.seal}. *)

val of_payload : string -> snapshot option
(** Inverse of {!to_payload}; [None] on any malformed input. *)

val snapshot_path : dir:string -> host:string -> pid:int -> string
val crash_path : dir:string -> host:string -> pid:int -> string
val is_telem_file : string -> bool
val is_crash_file : string -> bool

val read_file : string -> snapshot option
(** Unseal and parse one snapshot file; [None] when absent, torn,
    corrupt or truncated. *)

(** {2 Fleet reads and merging} *)

val load_dir : string -> snapshot list * int
(** All [.telem] snapshots under a directory (sorted by filename) and
    the number of corrupt/unreadable ones skipped. *)

val load_crashes : string -> snapshot list * int
(** Same for [.crash] flight records. *)

val crash_files : string -> string list
(** Paths of crash records under a directory, sorted. *)

val dedupe : snapshot list -> snapshot list
(** One snapshot per (host,pid) — the fullest capture wins (counters
    are cumulative) — sorted by (host, pid). *)

val to_process : snapshot -> Trace.process
(** The snapshot as {!Trace.render_merged} input. *)

val merge_dir : string -> string * int * int * int
(** Fold every snapshot and crash record under a directory into one
    Chrome trace: [(json, events, processes, skipped)].  Clocks are
    aligned via the epoch anchors; counters are summed across
    processes. *)

val absorb_foreign : snapshot list -> unit
(** Add foreign processes' counters and histograms into this
    process's live registries (skipping any snapshot matching this
    host+pid), so the coordinator's final [gat stats] output is
    fleet-wide. *)
