(* Atomic filesystem leases for multi-process coordination.

   A lease is a small MD5-sealed file created with O_EXCL, so exactly
   one process can hold it however many race for the create: the
   filesystem is the arbiter, and it works on any shared directory
   (including one mounted from several machines).  The body names the
   owner (host, pid, a per-acquisition token) and carries an absolute
   expiry deadline; holders renew the deadline as a heartbeat, and
   anyone observing an expired lease may break it and take over.

   Clock model: deadlines are wall-clock ([Unix.gettimeofday]) because
   they must be meaningful across processes and machines; a lease TTL
   should therefore be generous (seconds, not milliseconds) relative
   to plausible clock skew.  Breaking a lease is advisory — between
   the expiry check and the [unlink] another process may have broken
   and re-acquired it, in which case two holders can briefly coexist.
   Coordination layers built on leases must therefore tolerate
   duplicate work; the sweep sharding layer does, because duplicate
   shard evaluations produce byte-identical parts. *)

let magic = "gat-lease 1"

let m_acquired = Metrics.counter "lease.acquired"
let m_acquire_lost = Metrics.counter "lease.acquire_lost"
let m_renewals = Metrics.counter "lease.renewals"
let m_renew_soft = Metrics.counter "lease.renew_soft_failures"
let m_lost = Metrics.counter "lease.lost"
let m_released = Metrics.counter "lease.released"
let m_broken = Metrics.counter "lease.broken"

type info = { owner : string; pid : int; host : string; deadline : float }

let now () = Unix.gettimeofday ()
let hostname () = try Unix.gethostname () with Unix.Unix_error _ -> "unknown"

let make_owner () =
  (* Unique per acquisition context: host and pid identify the
     process, the monotonic-clock nonce separates successive owners
     from a recycled pid. *)
  Printf.sprintf "%s:%d:%Lx" (hostname ()) (Unix.getpid ()) (Metrics.now_ns ())

let body ~owner ~pid ~host ~deadline =
  let buf = Buffer.create 160 in
  Buffer.add_string buf magic;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "owner %s\npid %d\nhost %s\ndeadline %h\n" owner pid host
    deadline;
  Sealed_file.seal buf;
  buf

let strip prefix line =
  let p = String.length prefix in
  if String.length line > p && String.equal (String.sub line 0 p) prefix then
    String.sub line p (String.length line - p)
  else raise Exit

let parse payload =
  match String.split_on_char '\n' payload with
  | m :: o :: p :: h :: d :: _ when String.equal m magic -> (
      try
        let owner = strip "owner " o in
        let pid = int_of_string (strip "pid " p) in
        let host = strip "host " h in
        (* [%h] output round-trips exactly through [float_of_string]. *)
        let deadline = float_of_string (strip "deadline " d) in
        Some { owner; pid; host; deadline }
      with Exit | Failure _ -> None)
  | _ -> None

let read path = Option.bind (Sealed_file.read path) parse

let acquire ~path ~owner ~ttl =
  Cache_dir.ensure (Filename.dirname path);
  match
    Fault.inject ~site:"lease-acquire" ~key:(Filename.basename path);
    Unix.openfile path
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL; Unix.O_CLOEXEC ]
      0o644
  with
  | exception Unix.Unix_error _ ->
      (* EEXIST: someone else holds it.  Other errors (unwritable
         directory) also read as "not acquired" — the caller treats a
         lost race and an unusable directory the same way. *)
      Metrics.incr m_acquire_lost;
      false
  | exception Fault.Injected _ ->
      Metrics.incr m_acquire_lost;
      false
  | fd ->
      let buf = body ~owner ~pid:(Unix.getpid ()) ~host:(hostname ())
          ~deadline:(now () +. ttl)
      in
      let s = Buffer.contents buf in
      (try
         let pos = ref 0 in
         while !pos < String.length s do
           pos := !pos + Unix.write_substring fd s !pos (String.length s - !pos)
         done
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Metrics.incr m_acquired;
      true

let renew ~path ~owner ~ttl =
  match read path with
  | Some i when String.equal i.owner owner -> (
      let buf = body ~owner ~pid:i.pid ~host:i.host ~deadline:(now () +. ttl) in
      match
        Fault.inject ~site:"lease-renew" ~key:(Filename.basename path);
        Sealed_file.publish ~path buf
      with
      | () ->
          Metrics.incr m_renewals;
          true
      | exception (Sys_error _ | Fault.Injected _) ->
          (* Soft failure: still the owner, the old deadline stands.
             The holder keeps working; it only loses the lease if the
             deadline actually lapses and someone breaks it. *)
          Metrics.incr m_renew_soft;
          true)
  | Some _ | None ->
      (* Someone else owns it, it was broken, or the body is torn by a
         racing acquire: either way this holder must stand down. *)
      Metrics.incr m_lost;
      false

let release ~path ~owner =
  match read path with
  | Some i when String.equal i.owner owner -> (
      try
        Sys.remove path;
        Metrics.incr m_released
      with Sys_error _ -> ())
  | Some _ | None -> ()

let live ~ttl path =
  match read path with
  | Some i -> i.deadline > now ()
  | None -> (
      (* Unreadable but present: possibly a racing acquire mid-write.
         Grant it a grace of one TTL from its mtime before declaring
         it dead, so a torn write is never broken instantly. *)
      match Unix.stat path with
      | exception Unix.Unix_error _ -> false
      | st -> st.Unix.st_mtime +. ttl > now ())

let break_if_expired ~ttl path =
  if Sys.file_exists path && not (live ~ttl path) then
    match Sys.remove path with
    | () ->
        Metrics.incr m_broken;
        true
    | exception Sys_error _ -> false
  else false
