type t = { lo : float; hi : float; counts : int array }

let create ~lo ~hi ~bins xs =
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  if lo >= hi then invalid_arg "Histogram.create: lo must be < hi";
  let counts = Array.make bins 0 in
  let width = (hi -. lo) /. float_of_int bins in
  let clamp i = max 0 (min (bins - 1) i) in
  Array.iter
    (fun x ->
      let i = clamp (int_of_float (Float.floor ((x -. lo) /. width))) in
      counts.(i) <- counts.(i) + 1)
    xs;
  { lo; hi; counts }

let bin_edges t =
  let bins = Array.length t.counts in
  let width = (t.hi -. t.lo) /. float_of_int bins in
  Array.init bins (fun i ->
      (t.lo +. (float_of_int i *. width), t.lo +. (float_of_int (i + 1) *. width)))

let total t = Array.fold_left ( + ) 0 t.counts

let render ?(width = 40) ?(label = fun x -> Printf.sprintf "%8.0f" x) t =
  let peak = Array.fold_left max 1 t.counts in
  let edges = bin_edges t in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun i count ->
      let lo, _ = edges.(i) in
      let bar = count * width / peak in
      Buffer.add_string buf (label lo);
      Buffer.add_string buf " |";
      Buffer.add_string buf (String.make bar '#');
      Buffer.add_string buf (Printf.sprintf " %d\n" count))
    t.counts;
  Buffer.contents buf

(* ---- log-bucketed latency histograms ---- *)

module Log = struct
  (* Every histogram in the fleet uses one fixed, global bucket scheme,
     which is what makes "merge = bucket-wise sum" well defined across
     processes and machines: bucket [i] for [i < 8] holds the exact
     nanosecond value [i]; above that, values fall into 4 sub-buckets
     per power of two (bucket [4*b + sub] where [b = floor(log2 v)] and
     [sub] is the next two mantissa bits), i.e. ~19% relative bucket
     width.  256 buckets cover up to 2^63 ns — every representable
     duration. *)

  let buckets = 256

  type t = { counts : int Atomic.t array; sum_ns : int Atomic.t }

  let create () =
    { counts = Array.init buckets (fun _ -> Atomic.make 0);
      sum_ns = Atomic.make 0 }

  let msb v =
    let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
    go v 0

  let bucket_of_ns v =
    if v <= 0 then 0
    else if v < 8 then v
    else
      let b = msb v in
      let sub = (v lsr (b - 2)) land 3 in
      min (buckets - 1) ((4 * b) + sub)

  let bucket_lower i =
    if i < 8 then i
    else
      let b = i / 4 and sub = i mod 4 in
      (1 lsl b) + (sub * (1 lsl (b - 2)))

  let record t ns =
    let ns = if ns < 0 then 0 else ns in
    ignore (Atomic.fetch_and_add t.counts.(bucket_of_ns ns) 1);
    ignore (Atomic.fetch_and_add t.sum_ns ns)

  let total t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts
  let sum_ns t = Atomic.get t.sum_ns
  let counts t = Array.map Atomic.get t.counts

  let of_counts ?(sum_ns = 0) cs =
    if Array.length cs <> buckets then
      invalid_arg "Histogram.Log.of_counts: wrong bucket count";
    { counts = Array.map Atomic.make cs; sum_ns = Atomic.make sum_ns }

  let merge_into ~into t =
    Array.iteri
      (fun i c ->
        let n = Atomic.get c in
        if n <> 0 then ignore (Atomic.fetch_and_add into.counts.(i) n))
      t.counts;
    let s = Atomic.get t.sum_ns in
    if s <> 0 then ignore (Atomic.fetch_and_add into.sum_ns s)

  let merge a b =
    let m = create () in
    merge_into ~into:m a;
    merge_into ~into:m b;
    m

  let reset t =
    Array.iter (fun c -> Atomic.set c 0) t.counts;
    Atomic.set t.sum_ns 0

  (* Lower edge of the first bucket whose cumulative count reaches
     [q * total] — deterministic (no interpolation), monotone in [q]. *)
  let percentile_ns t q =
    let n = total t in
    if n = 0 then 0
    else
      let want =
        let w = int_of_float (Float.ceil (q *. float_of_int n)) in
        max 1 (min n w)
      in
      let cum = ref 0 and found = ref 0 in
      (try
         Array.iteri
           (fun i c ->
             cum := !cum + Atomic.get c;
             if !cum >= want then begin
               found := bucket_lower i;
               raise Exit
             end)
           t.counts
       with Exit -> ());
      !found

  (* Sparse text form, one token per non-empty bucket: "i:count",
     prefixed by the total sample sum so mean survives round-trips. *)
  let serialize t =
    let b = Buffer.create 128 in
    Buffer.add_string b (Printf.sprintf "sum=%d" (Atomic.get t.sum_ns));
    Array.iteri
      (fun i c ->
        let n = Atomic.get c in
        if n <> 0 then Buffer.add_string b (Printf.sprintf " %d:%d" i n))
      t.counts;
    Buffer.contents b

  let parse s =
    match String.split_on_char ' ' (String.trim s) with
    | [] -> None
    | sum :: rest -> (
        let parse_sum s =
          if String.length s > 4 && String.sub s 0 4 = "sum=" then
            int_of_string_opt (String.sub s 4 (String.length s - 4))
          else None
        in
        match parse_sum sum with
        | None -> None
        | Some sum_ns -> (
            let t = create () in
            Atomic.set t.sum_ns sum_ns;
            try
              List.iter
                (fun tok ->
                  if tok <> "" then
                    match String.index_opt tok ':' with
                    | None -> raise Exit
                    | Some j -> (
                        let i =
                          int_of_string_opt (String.sub tok 0 j)
                        and n =
                          int_of_string_opt
                            (String.sub tok (j + 1)
                               (String.length tok - j - 1))
                        in
                        match (i, n) with
                        | Some i, Some n when i >= 0 && i < buckets && n >= 0
                          ->
                            Atomic.set t.counts.(i) n
                        | _ -> raise Exit))
                rest;
              Some t
            with Exit -> None))

  let pp_ns ns =
    let f = float_of_int ns in
    if ns >= 1_000_000_000 then Printf.sprintf "%.2fs" (f *. 1e-9)
    else if ns >= 1_000_000 then Printf.sprintf "%.1fms" (f *. 1e-6)
    else if ns >= 1_000 then Printf.sprintf "%.1fus" (f *. 1e-3)
    else Printf.sprintf "%dns" ns

  let render ?(width = 40) t =
    let cs = counts t in
    let peak = Array.fold_left max 1 cs in
    let first = ref buckets and last = ref (-1) in
    Array.iteri
      (fun i c ->
        if c <> 0 then begin
          if i < !first then first := i;
          if i > !last then last := i
        end)
      cs;
    if !last < 0 then "(empty)\n"
    else begin
      let b = Buffer.create 512 in
      for i = !first to !last do
        let bar = cs.(i) * width / peak in
        Buffer.add_string b (Printf.sprintf "%10s |" (pp_ns (bucket_lower i)));
        Buffer.add_string b (String.make bar '#');
        Buffer.add_string b (Printf.sprintf " %d\n" cs.(i))
      done;
      Buffer.contents b
    end
end
