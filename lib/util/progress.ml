(* Live sweep progress on stderr.

   On a TTY the line redraws in place (carriage return, padded to
   erase the previous render) at most every 100 ms; when stderr is not
   a TTY (CI logs, redirections) it degrades to a full line every few
   seconds plus one final line, so logs stay readable and greppable.
   All rendering is throttled by the monotonic clock and never touches
   stdout, which stays byte-identical across runs. *)

type t = {
  label : string;
  total : int;
  tty : bool;
  out : out_channel;
  start_ns : int64;
  mutable last_ns : int64;
  mutable last_width : int;
}

let tty_refresh_ns = 100_000_000L (* 100 ms *)
let line_refresh_ns = 2_000_000_000L (* 2 s *)

let create ?(out = stderr) ?tty ~label ~total () =
  let tty =
    match tty with
    | Some b -> b
    | None -> ( try Unix.isatty Unix.stderr with Unix.Unix_error _ -> false)
  in
  {
    label;
    total;
    tty;
    out;
    start_ns = Metrics.now_ns ();
    last_ns = 0L;
    last_width = 0;
  }

let pct ~done_ ~total =
  if total <= 0 then 100 else done_ * 100 / total

(* Pure so tests can cover the formatting without a clock or a TTY. *)
let render_line ?workers ?reclaimed ~label ~total ~done_ ~failures
    ~cache_hit_pct ~steals ~elapsed_s () =
  let rate = if elapsed_s > 0.0 then float_of_int done_ /. elapsed_s else 0.0 in
  let eta =
    if done_ > 0 && done_ < total && rate > 0.0 then
      Printf.sprintf "ETA %s" (Metrics.pp_duration (float_of_int (total - done_) /. rate))
    else "ETA --"
  in
  let cache =
    match cache_hit_pct with
    | Some p -> Printf.sprintf "  cache %d%%" p
    | None -> ""
  in
  (* Steal activity only once it exists: a balanced (or sequential)
     sweep keeps the line short. *)
  let steals =
    match steals with
    | Some s when s > 0 ->
        if elapsed_s > 0.0 then
          Printf.sprintf "  steals %d (%.0f/s)" s (float_of_int s /. elapsed_s)
        else Printf.sprintf "  steals %d" s
    | _ -> ""
  in
  (* Distributed-sweep fields, rendered only while relevant: external
     workers attached to the coordination directory, and leases
     reclaimed from dead ones. *)
  let workers =
    match workers with
    | Some w when w > 0 -> Printf.sprintf "  workers %d" w
    | _ -> ""
  in
  let reclaimed =
    match reclaimed with
    | Some r when r > 0 -> Printf.sprintf "  reclaimed %d" r
    | _ -> ""
  in
  Printf.sprintf "%s %d/%d %d%%  %.0f pts/s  %s%s%s%s%s  failed %d" label done_
    total
    (pct ~done_ ~total)
    rate eta cache steals workers reclaimed failures

let write t line =
  if t.tty then begin
    (* Pad with spaces to erase any longer previous render. *)
    let pad = max 0 (t.last_width - String.length line) in
    Printf.fprintf t.out "\r%s%s%!" line (String.make pad ' ');
    t.last_width <- String.length line
  end
  else Printf.fprintf t.out "%s\n%!" line

let elapsed_s t =
  Int64.to_float (Int64.sub (Metrics.now_ns ()) t.start_ns) /. 1e9

let line t ?workers ?reclaimed ~done_ ~failures ~cache_hit_pct ~steals () =
  render_line ?workers ?reclaimed ~label:t.label ~total:t.total ~done_
    ~failures ~cache_hit_pct ~steals ~elapsed_s:(elapsed_s t) ()

let update t ~done_ ~failures ?cache_hit_pct ?steals ?workers ?reclaimed () =
  let now = Metrics.now_ns () in
  let due = Int64.sub now t.last_ns in
  let refresh = if t.tty then tty_refresh_ns else line_refresh_ns in
  if due >= refresh then begin
    t.last_ns <- now;
    write t (line t ?workers ?reclaimed ~done_ ~failures ~cache_hit_pct ~steals ())
  end

let finish t ~done_ ~failures ?cache_hit_pct ?steals ?workers ?reclaimed () =
  write t (line t ?workers ?reclaimed ~done_ ~failures ~cache_hit_pct ~steals ());
  if t.tty then Printf.fprintf t.out "\n%!"
