(** Span tracing with Chrome trace-event export.

    The observability substrate's event side: {!span} wraps a
    computation and records a complete ("X") event into the calling
    domain's private buffer; {!finish} merges every domain's buffer
    and writes one Chrome trace-event JSON file, loadable in Perfetto
    or [chrome://tracing] — one track per domain, span args carrying
    variant coordinates, and a final counter sample per registered
    {!Metrics} counter.

    Cost model: when tracing is off (the default) every entry point is
    one [Atomic.get] and a branch — no clock read, no allocation, no
    lock.  When on, a span costs two monotonic-clock reads and one
    cons onto a domain-local list; buffers are bounded (excess events
    are dropped and counted) and merged only at {!finish}.

    Recording is bit-transparent: spans return the traced thunk's
    value unchanged and re-raise its exceptions with their
    backtraces. *)

val on : unit -> bool
(** Whether spans are being recorded (the fast-path flag; inline the
    check before building expensive args in hot paths). *)

val enable : unit -> unit
(** Start recording (no output file; for tests). *)

val enable_to : string -> unit
(** Start recording and write the trace to this file at {!finish}
    (the CLI's [--trace FILE]). *)

val disable : unit -> unit
(** Stop recording; buffered events remain until {!clear}. *)

type arg = S of string | I of int | F of float
(** Span argument values: shown under the span in the viewer. *)

val span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when enabled, records a complete
    event named [name] covering [f]'s duration on this domain's
    track.  Use stable names ([compile.lower], [sweep.simulate]) and
    put per-instance coordinates in [args]. *)

val instant : ?args:(string * arg) list -> string -> unit
(** A zero-duration instant event (e.g. an injected fault). *)

val collected : unit -> int
(** Events currently buffered across all domains. *)

val dropped : unit -> int
(** Events dropped because a domain buffer reached capacity. *)

val clear : unit -> unit
(** Drop all buffered events (buffers stay registered). *)

type event = {
  name : string;
  ph : char;  (** 'X' complete, 'i' instant, 'C' counter, 'M' metadata *)
  ts_ns : int64;  (** Monotonic-clock start, nanoseconds. *)
  dur_ns : int64;
  tid : int;  (** Recording domain's id. *)
  args : (string * arg) list;
}
(** A raw buffered event, exposed for telemetry snapshots. *)

val events : unit -> event list
(** Every buffered event across all domains, sorted by
    (timestamp, tid, name). *)

val serialize_events : event list -> string
(** One JSON object per line with raw nanosecond fields — the
    snapshot wire form; inverse of {!parse_events}. *)

val parse_events : string -> event list option
(** Parse {!serialize_events} output; [None] if any line is
    malformed (readers treat that as a corrupt snapshot). *)

type process = {
  p_host : string;
  p_pid : int;
  p_anchor_mono_ns : int64;
      (** Monotonic clock at the process's anchor instant. *)
  p_anchor_wall_ns : int64;
      (** Wall clock (ns since the Unix epoch) at the same instant. *)
  p_events : event list;
  p_counters : (string * int) list;
  p_dropped : int;
}
(** One process's telemetry as input to {!render_merged}. *)

val render_merged : process list -> string * int
(** Fold many processes' events into one Chrome trace: one trace
    process per (host,pid) with its domain tracks under it, clocks
    aligned via each process's monotonic→wall epoch anchor and
    rebased to the fleet's earliest event, counters summed across
    processes into final 'C' samples.  Returns the JSON and the
    total span/instant event count. *)

val render : unit -> string * int
(** The merged trace as Chrome trace-event JSON plus the number of
    recorded events (excludes metadata/counter lines). *)

val out_path : unit -> string option
(** The output file registered by {!enable_to}, if any. *)

val write_file : string -> int
(** Render and write to a file; returns the event count. *)

val finish : unit -> (string * int) option
(** If tracing was started with {!enable_to}: write the file, disable
    tracing, clear the buffers, and return [(path, events)].
    Otherwise just disable and return [None].  The CLI calls this on
    every exit path so a trace survives failed runs. *)

(** {2 Validation — the test checker}

    A minimal structural checker for trace files, shared by the unit
    tests and the CI [trace-smoke] job ([gat trace-check]).  It
    parses the JSON with a built-in reader (no JSON dependency),
    verifies every event has [name]/[ph]/[ts]/[tid], that ["B"]/["E"]
    events balance per track with matching names, that ["X"] events
    carry a non-negative [dur], and that all [require]d counter
    samples are present.  A requirement is a bare counter name
    (presence) or a comparison ["name>K"], ["name>=K"] or ["name=K"]
    with integer [K] against the latest sample — CI uses
    ["pool.steals>0"] to prove the work-stealing scheduler actually
    stole under load. *)

type validation = {
  events : int;  (** Span/instant events (metadata and counters excluded). *)
  tracks : int;  (** Distinct (pid, tid) tracks carrying events. *)
  pids : int;  (** Distinct process tracks carrying span/instant events. *)
  counters : string list;  (** Names of counter samples, sorted. *)
  span_names : string list;  (** Distinct span names, sorted. *)
}

val validate_string : ?require:string list -> string -> (validation, string) result
val validate_file : ?require:string list -> string -> (validation, string) result
