(* MD5-sealed atomic file entries.

   The format every persistent cache entry in the system shares: a
   line-oriented text payload closed by

     end\nmd5 <hex of every byte before this line>\n

   so that truncations and byte flips — including inside a hex-float
   literal, where the damage would otherwise still parse — fail
   verification, and the caller treats the entry as a miss, never as
   wrong data.  Publication is write-temp-then-rename in the target
   directory, so concurrent readers (and a SIGKILL between the two
   syscalls) see either the old entry or the new one, never a partial
   write. *)

(* The digest covers the payload plus the "end" line — the exact
   region the original Disk_cache trailer digested, so files it wrote
   before this module existed still verify. *)
let seal buf =
  Buffer.add_string buf "end\n";
  Buffer.add_string buf
    ("md5 " ^ Digest.to_hex (Digest.string (Buffer.contents buf)) ^ "\n")

(* "end\n" + "md5 " + 32 hex + "\n" *)
let trailer_len = 4 + 4 + 32 + 1

let unseal s =
  let n = String.length s in
  if n < trailer_len then None
  else
    let payload_len = n - trailer_len in
    if
      String.equal (String.sub s payload_len 8) "end\nmd5 "
      && s.[n - 1] = '\n'
      && String.equal
           (String.sub s (payload_len + 8) 32)
           (Digest.to_hex (Digest.substring s 0 (payload_len + 4)))
    then Some (String.sub s 0 payload_len)
    else None

let publish ~path buf =
  let d = Filename.dirname path in
  Cache_dir.ensure d;
  let tmp = Filename.temp_file ~temp_dir:d "gat" ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf));
  Sys.rename tmp path

let read_raw path = In_channel.with_open_bin path In_channel.input_all

let read path =
  match read_raw path with
  | s -> unseal s
  | exception Sys_error _ -> None
