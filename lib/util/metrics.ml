(* Process-wide counters and timers.

   The substrate is deliberately minimal: a counter is one atomic
   integer, an increment is one [fetch_and_add], and the registry
   mutex is touched only at registration (module initialization) and
   when taking a snapshot.  Hot paths bind their counters at module
   top level, so steady-state cost is an atomic add per event — cheap
   enough to leave on unconditionally, which is the point: the sweep
   engine's cache-hit rates, retry counts and failure totals are
   always available, not only when someone remembered to profile.

   Timers record wall-clock durations on the monotonic clock
   (bechamel's [clock_gettime(CLOCK_MONOTONIC)] stub, nanosecond
   resolution, allocation-free).  Counter values are deterministic for
   a deterministic run; timer sums are not, which is why the
   deterministic {!render_counters} dump and the full {!render} dump
   are separate entry points — golden tests cover the former. *)

let now_ns () = Monotonic_clock.now ()

type counter = { name : string; value : int Atomic.t }

type timer = {
  tname : string;
  events : int Atomic.t;
  total_ns : int Atomic.t;
}

let lock = Mutex.create ()

let with_lock f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.unlock lock;
      Printexc.raise_with_backtrace e bt

let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let timers : (string, timer) Hashtbl.t = Hashtbl.create 16

type hist = { hname : string; h : Histogram.Log.t }

let hists : (string, hist) Hashtbl.t = Hashtbl.create 16

let counter name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
          let c = { name; value = Atomic.make 0 } in
          Hashtbl.replace counters name c;
          c)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)
let set c v = Atomic.set c.value v
let value c = Atomic.get c.value
let bump ?by name = incr ?by (counter name)

let timer tname =
  with_lock (fun () ->
      match Hashtbl.find_opt timers tname with
      | Some t -> t
      | None ->
          let t = { tname; events = Atomic.make 0; total_ns = Atomic.make 0 } in
          Hashtbl.replace timers tname t;
          t)

let timer_add t ns =
  ignore (Atomic.fetch_and_add t.events 1);
  ignore (Atomic.fetch_and_add t.total_ns ns)

let timed t f =
  let t0 = now_ns () in
  match f () with
  | v ->
      let dt = Int64.to_int (Int64.sub (now_ns ()) t0) in
      timer_add t dt;
      (v, float_of_int dt *. 1e-9)
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      timer_add t (Int64.to_int (Int64.sub (now_ns ()) t0));
      Printexc.raise_with_backtrace e bt

let time t f = fst (timed t f)

let histogram hname =
  with_lock (fun () ->
      match Hashtbl.find_opt hists hname with
      | Some h -> h
      | None ->
          let h = { hname; h = Histogram.Log.create () } in
          Hashtbl.replace hists hname h;
          h)

let observe h ns = Histogram.Log.record h.h ns

let observe_timed h f =
  let t0 = now_ns () in
  match f () with
  | v ->
      observe h (Int64.to_int (Int64.sub (now_ns ()) t0));
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      observe h (Int64.to_int (Int64.sub (now_ns ()) t0));
      Printexc.raise_with_backtrace e bt

let observe_by_name hname ns = observe (histogram hname) ns

let reset () =
  with_lock (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.value 0) counters;
      Hashtbl.iter
        (fun _ t ->
          Atomic.set t.events 0;
          Atomic.set t.total_ns 0)
        timers;
      Hashtbl.iter (fun _ h -> Histogram.Log.reset h.h) hists)

let counters_snapshot () =
  with_lock (fun () ->
      Hashtbl.fold (fun name c acc -> (name, Atomic.get c.value) :: acc) counters [])
  |> List.sort compare

let timers_snapshot () =
  with_lock (fun () ->
      Hashtbl.fold
        (fun name t acc ->
          (name, Atomic.get t.events, float_of_int (Atomic.get t.total_ns) *. 1e-9)
          :: acc)
        timers [])
  |> List.sort compare

let histograms_snapshot () =
  with_lock (fun () -> Hashtbl.fold (fun name h acc -> (name, h.h) :: acc) hists [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let merge_histogram name other =
  let h = histogram name in
  Histogram.Log.merge_into ~into:h.h other

(* ---- rendering ---- *)

(* One duration-formatting path for every CLI timing line. *)
let pp_duration s =
  if s >= 100.0 then Printf.sprintf "%.0f s" s
  else if s >= 1.0 then Printf.sprintf "%.1f s" s
  else if s >= 0.001 then Printf.sprintf "%.0f ms" (s *. 1e3)
  else Printf.sprintf "%.2f ms" (s *. 1e3)

let prometheus_name name =
  let mangled =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      name
  in
  "gat_" ^ mangled

let render_counters () =
  let b = Buffer.create 1024 in
  List.iter
    (fun (name, v) ->
      let p = prometheus_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" p p v))
    (counters_snapshot ());
  Buffer.contents b

let render_histograms () =
  let b = Buffer.create 2048 in
  List.iter
    (fun (name, h) ->
      let n = Histogram.Log.total h in
      if n > 0 then begin
        Buffer.add_string b
          (Printf.sprintf "# %s: %d samples, p50 %s, p99 %s, mean %s\n" name n
             (Histogram.Log.pp_ns (Histogram.Log.percentile_ns h 0.5))
             (Histogram.Log.pp_ns (Histogram.Log.percentile_ns h 0.99))
             (Histogram.Log.pp_ns (Histogram.Log.sum_ns h / n)));
        Buffer.add_string b (Histogram.Log.render h)
      end)
    (histograms_snapshot ());
  Buffer.contents b

let render () =
  let b = Buffer.create 2048 in
  Buffer.add_string b (render_counters ());
  List.iter
    (fun (name, count, seconds) ->
      let p = prometheus_name name ^ "_seconds" in
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s summary\n%s_count %d\n%s_sum %.6f\n" p p
           count p seconds))
    (timers_snapshot ());
  Buffer.add_string b (render_histograms ());
  Buffer.contents b

let dump_requested () =
  match Sys.getenv_opt "GAT_STATS" with
  | None | Some ("" | "0") -> false
  | Some _ -> true
