type stage =
  | Usage
  | Parse
  | Typecheck
  | Compile
  | Verify
  | Tune
  | Io
  | Shard
  | Interrupted
  | Internal

type t = { stage : stage; message : string; hint : string option }

exception Error of t

let stage_name = function
  | Usage -> "usage"
  | Parse -> "parse"
  | Typecheck -> "typecheck"
  | Compile -> "compile"
  | Verify -> "verify"
  | Tune -> "tuning"
  | Io -> "i/o"
  | Shard -> "shard"
  | Interrupted -> "interrupted"
  | Internal -> "internal"

(* The documented contract (README "Exit codes"): small stable numbers
   for user-facing failure classes, 130 = 128+SIGINT for interruption
   (the shell convention), 125 for bugs. *)
let exit_code = function
  | Usage -> 2
  | Parse -> 3
  | Typecheck -> 3
  | Compile -> 4
  | Tune -> 5
  | Io -> 6
  | Verify -> 7
  | Shard -> 8
  | Interrupted -> 130
  | Internal -> 125

let to_string e =
  match e.stage with
  | Interrupted -> e.message
  | s -> Printf.sprintf "%s error: %s" (stage_name s) e.message

let fail ?hint stage message = raise (Error { stage; message; hint })
let failf ?hint stage fmt = Printf.ksprintf (fail ?hint stage) fmt

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Gat_util.Error: " ^ to_string e)
    | _ -> None)
