type value = Int of int | Str of string
type param = { pname : string; values : value list }
type t = { params : param list }

let value_to_string = function
  | Int i -> string_of_int i
  | Str s -> "'" ^ s ^ "'"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "/*@ begin PerfTuning (\n";
  Buffer.add_string buf "def performance_params {\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "param %s[] = [%s];\n" p.pname
           (String.concat "," (List.map value_to_string p.values))))
    t.params;
  Buffer.add_string buf "}\n) @*/\n";
  Buffer.contents buf

let find t name = List.find_opt (fun p -> p.pname = name) t.params

let cardinality t =
  List.fold_left (fun acc p -> acc * List.length p.values) 1 t.params

let int_values t name =
  match find t name with
  | None -> []
  | Some p ->
      List.map
        (function
          | Int i -> i
          | Str s ->
              invalid_arg
                (Printf.sprintf "Tuning_spec.int_values %s: string value %s"
                   name s))
        p.values

let string_values t name =
  match find t name with
  | None -> []
  | Some p ->
      List.map (function Int i -> string_of_int i | Str s -> s) p.values

(* ---- parsing ---- *)

let fail fmt = Printf.ksprintf (fun s -> Error s) fmt

(* The /*@ begin PerfTuning ... @*/ wrapper never contains ';', so we can
   parse by locating each "param" keyword and reading to the next ';'. *)
let param_statements text =
  let statements = ref [] in
  let len = String.length text in
  let rec find_param i =
    if i + 5 >= len then ()
    else if
      String.sub text i 5 = "param"
      && (i = 0 || not (Char.equal text.[i - 1] '_'))
    then begin
      match String.index_from_opt text i ';' with
      | None -> ()
      | Some semi ->
          statements := String.sub text (i + 5) (semi - i - 5) :: !statements;
          find_param (semi + 1)
    end
    else find_param (i + 1)
  in
  find_param 0;
  List.rev !statements

let parse_values rhs =
  let rhs = String.trim rhs in
  let parse_scalar tok =
    let tok = String.trim tok in
    let len = String.length tok in
    if len >= 2 && tok.[0] = '\'' && tok.[len - 1] = '\'' then
      Ok (Str (String.sub tok 1 (len - 2)))
    else if len >= 2 && tok.[0] = '"' && tok.[len - 1] = '"' then
      Ok (Str (String.sub tok 1 (len - 2)))
    else
      match int_of_string_opt tok with
      | Some i -> Ok (Int i)
      | None -> fail "cannot parse value %S" tok
  in
  let collect toks =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | tok :: rest -> (
          match parse_scalar tok with
          | Ok v -> go (v :: acc) rest
          | Error e -> Error e)
    in
    go [] toks
  in
  let len = String.length rhs in
  if len >= 6 && String.sub rhs 0 6 = "range(" && rhs.[len - 1] = ')' then begin
    let args = String.sub rhs 6 (len - 7) in
    let parts = String.split_on_char ',' args |> List.map String.trim in
    match
      List.map
        (fun p ->
          match int_of_string_opt p with
          | Some i -> i
          | None -> invalid_arg p)
        parts
    with
    | exception Invalid_argument tok -> fail "bad range argument %S" tok
    | [ lo; hi ] | [ lo; hi; 1 ] ->
        Ok (List.init (max 0 (hi - lo)) (fun i -> Int (lo + i)))
    | [ lo; hi; step ] when step > 0 ->
        let count = if hi <= lo then 0 else ((hi - lo - 1) / step) + 1 in
        Ok (List.init count (fun i -> Int (lo + (i * step))))
    | _ -> fail "range needs 2 or 3 positive arguments: %S" rhs
  end
  else if len >= 2 && rhs.[0] = '[' && rhs.[len - 1] = ']' then begin
    let body = String.sub rhs 1 (len - 2) in
    if String.trim body = "" then Ok []
    else collect (String.split_on_char ',' body)
  end
  else fail "cannot parse values %S" rhs

let parse_statement stmt =
  (* "<NAME>[] = <rhs>" *)
  match String.index_opt stmt '=' with
  | None -> fail "missing '=' in param statement %S" stmt
  | Some eq -> (
      let name_part = String.trim (String.sub stmt 0 eq) in
      let rhs = String.sub stmt (eq + 1) (String.length stmt - eq - 1) in
      let name =
        let len = String.length name_part in
        if len > 2 && String.sub name_part (len - 2) 2 = "[]" then
          String.trim (String.sub name_part 0 (len - 2))
        else name_part
      in
      if name = "" then fail "empty parameter name in %S" stmt
      else
        match parse_values rhs with
        | Ok values -> Ok { pname = name; values }
        | Error e -> Error e)

let parse text =
  let statements = param_statements text in
  if statements = [] then fail "no param statements found"
  else
    let rec go acc = function
      | [] -> Ok { params = List.rev acc }
      | stmt :: rest -> (
          match parse_statement stmt with
          | Ok p -> go (p :: acc) rest
          | Error e -> Error e)
    in
    go [] statements

let parse_exn text =
  match parse text with Ok t -> t | Error e -> Gat_util.Error.fail Parse e

(* Fig. 3 / Table III.  Fig. 3's BC step (24) is authoritative: it is the
   only step consistent with the paper's 5,120-variant space
   (32*8*5*2*2, with SC pinned). *)
let table_iii =
  parse_exn
    {|/*@ begin PerfTuning (
def performance_params {
param TC[] = range(32,1025,32);
param BC[] = range(24,193,24);
param UIF[] = range(1,6);
param PL[] = [16,48];
param SC[] = range(1,6);
param CFLAGS[] = ['', '-use_fast_math'];
}
) @*/|}
