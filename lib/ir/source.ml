type parsed = { kernel : Kernel.t; spec : Tuning_spec.t option }
type error = { line : int; message : string }

let error_to_string e = Printf.sprintf "line %d: %s" e.line e.message

exception Fail of error

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Fail { line; message })) fmt

(* ---- annotation extraction ---- *)

(* Split off a leading /*@ ... @*/ Orio annotation block. *)
let extract_annotation text =
  let find needle from =
    let nl = String.length needle in
    let tl = String.length text in
    let rec scan i =
      if i + nl > tl then None
      else if String.sub text i nl = needle then Some i
      else scan (i + 1)
    in
    scan from
  in
  match find "/*@" 0 with
  | None -> (None, text)
  | Some start -> (
      match find "@*/" start with
      | None -> (None, text)
      | Some stop ->
          let annot = String.sub text start (stop + 3 - start) in
          let blanked =
            String.mapi
              (fun i c ->
                if i >= start && i < stop + 3 && c <> '\n' then ' ' else c)
              text
          in
          (Some annot, blanked))

(* ---- lexer ---- *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | PUNCT of string  (** one of the fixed operator/punctuation spellings *)
  | EOF

type lexed = { token : token; line : int }

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let lex text =
  let n = String.length text in
  let tokens = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push token = tokens := { token; line = !line } :: !tokens in
  while !i < n do
    let c = text.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '/' then begin
      while !i < n && text.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && text.[!i + 1] = '*' then begin
      (* Block comment (annotations were blanked out earlier). *)
      i := !i + 2;
      let finished = ref false in
      while (not !finished) && !i < n do
        if text.[!i] = '\n' then incr line;
        if !i + 1 < n && text.[!i] = '*' && text.[!i + 1] = '/' then begin
          i := !i + 2;
          finished := true
        end
        else incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char text.[!i] do
        incr i
      done;
      push (IDENT (String.sub text start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      let saw_dot = ref false in
      while
        !i < n
        && (is_digit text.[!i]
           || text.[!i] = '.'
           || text.[!i] = 'e'
           || text.[!i] = 'E'
           || ((text.[!i] = '+' || text.[!i] = '-')
              && !i > start
              && (text.[!i - 1] = 'e' || text.[!i - 1] = 'E')))
      do
        if text.[!i] = '.' || text.[!i] = 'e' || text.[!i] = 'E' then
          saw_dot := true;
        incr i
      done;
      let lexeme = String.sub text start (!i - start) in
      if !saw_dot then
        match float_of_string_opt lexeme with
        | Some f -> push (FLOAT f)
        | None -> fail !line "bad float literal %S" lexeme
      else begin
        match int_of_string_opt lexeme with
        | Some v -> push (INT v)
        | None -> fail !line "bad integer literal %S" lexeme
      end
    end
    else begin
      let two = if !i + 1 < n then String.sub text !i 2 else "" in
      match two with
      | "<=" | ">=" | "==" | "!=" | "&&" | "++" | "+=" ->
          push (PUNCT two);
          i := !i + 2
      | _ -> (
          match c with
          | '(' | ')' | '[' | ']' | '{' | '}' | ';' | ',' | '=' | '+' | '-'
          | '*' | '/' | '<' | '>' | '?' | ':' ->
              push (PUNCT (String.make 1 c));
              incr i
          | _ -> fail !line "unexpected character %C" c)
    end
  done;
  tokens := { token = EOF; line = !line } :: !tokens;
  Array.of_list (List.rev !tokens)

(* ---- parser ---- *)

type state = { toks : lexed array; mutable pos : int; arrays : (string, int) Hashtbl.t }

let peek st = st.toks.(st.pos)
let line_of st = (peek st).line
let advance st = st.pos <- st.pos + 1

let expect_punct st p =
  match (peek st).token with
  | PUNCT q when q = p -> advance st
  | _ -> fail (line_of st) "expected %S" p

let expect_ident st =
  match (peek st).token with
  | IDENT name ->
      advance st;
      name
  | _ -> fail (line_of st) "expected an identifier"

let accept_punct st p =
  match (peek st).token with
  | PUNCT q when q = p ->
      advance st;
      true
  | _ -> false

let accept_ident st name =
  match (peek st).token with
  | IDENT n when n = name ->
      advance st;
      true
  | _ -> false

let unary_calls =
  [
    ("sqrt", Expr.Sqrt); ("exp", Expr.Exp); ("log", Expr.Log);
    ("sin", Expr.Sin); ("cos", Expr.Cos); ("fabs", Expr.Abs);
    ("abs", Expr.Abs); ("recip", Expr.Recip);
  ]

let rec parse_expr st = parse_ternary st

and parse_ternary st =
  let cond = parse_and st in
  if accept_punct st "?" then begin
    let a = parse_expr st in
    expect_punct st ":";
    let b = parse_expr st in
    Expr.Select (cond, a, b)
  end
  else cond

(* [a && b] multiplies the 0/1 comparison results, matching the IR's
   boolean encoding. *)
and parse_and st =
  let lhs = parse_cmp st in
  if accept_punct st "&&" then Expr.Bin (Expr.Mul, lhs, parse_and st) else lhs

and parse_cmp st =
  let lhs = parse_additive st in
  let op =
    match (peek st).token with
    | PUNCT "<" -> Some Expr.Lt
    | PUNCT "<=" -> Some Expr.Le
    | PUNCT ">" -> Some Expr.Gt
    | PUNCT ">=" -> Some Expr.Ge
    | PUNCT "==" -> Some Expr.Eq
    | PUNCT "!=" -> Some Expr.Ne
    | _ -> None
  in
  match op with
  | Some op ->
      advance st;
      Expr.Cmp (op, lhs, parse_additive st)
  | None -> lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue_ = ref true in
  while !continue_ do
    if accept_punct st "+" then
      lhs := Expr.Bin (Expr.Add, !lhs, parse_multiplicative st)
    else if accept_punct st "-" then
      lhs := Expr.Bin (Expr.Sub, !lhs, parse_multiplicative st)
    else continue_ := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue_ = ref true in
  while !continue_ do
    if accept_punct st "*" then lhs := Expr.Bin (Expr.Mul, !lhs, parse_unary st)
    else if accept_punct st "/" then
      lhs := Expr.Bin (Expr.Div, !lhs, parse_unary st)
    else continue_ := false
  done;
  !lhs

and parse_unary st =
  if accept_punct st "-" then Expr.Un (Expr.Neg, parse_unary st)
  else parse_primary st

and parse_primary st =
  match (peek st).token with
  | INT v ->
      advance st;
      Expr.Int v
  | FLOAT f ->
      advance st;
      Expr.Float f
  | PUNCT "(" ->
      advance st;
      let e = parse_expr st in
      expect_punct st ")";
      e
  | IDENT "N" ->
      advance st;
      Expr.Size
  | IDENT name -> (
      advance st;
      match (peek st).token with
      | PUNCT "(" ->
          advance st;
          let args = parse_args st in
          apply_call st name args
      | PUNCT "[" -> Expr.Read (name, parse_subscripts st)
      | _ ->
          if Hashtbl.mem st.arrays name then
            fail (line_of st) "array %s used without a subscript" name
          else Expr.Var name)
  | _ -> fail (line_of st) "expected an expression"

and parse_args st =
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let e = parse_expr st in
      if accept_punct st "," then go (e :: acc)
      else begin
        expect_punct st ")";
        List.rev (e :: acc)
      end
    in
    go []
  end

and apply_call st name args =
  match (List.assoc_opt name unary_calls, args) with
  | Some op, [ a ] -> Expr.Un (op, a)
  | Some _, _ -> fail (line_of st) "%s takes one argument" name
  | None, _ -> (
      match (name, args) with
      | "min", [ a; b ] -> Expr.Bin (Expr.Min, a, b)
      | "max", [ a; b ] -> Expr.Bin (Expr.Max, a, b)
      | ("min" | "max"), _ -> fail (line_of st) "%s takes two arguments" name
      | _ -> fail (line_of st) "unknown function %s" name)

and parse_subscripts st =
  let rec go acc =
    expect_punct st "[";
    let e = parse_expr st in
    expect_punct st "]";
    let acc = e :: acc in
    match (peek st).token with
    | PUNCT "[" -> go acc
    | _ -> List.rev acc
  in
  go []

(* ---- statements ---- *)

let rec parse_block st =
  expect_punct st "{";
  let rec go acc =
    if accept_punct st "}" then List.rev acc else go (parse_stmt st :: acc)
  in
  go []

and parse_stmt st =
  if accept_ident st "parallel" then begin
    if not (accept_ident st "for") then
      fail (line_of st) "expected 'for' after 'parallel'";
    parse_for st ~kind:Stmt.Parallel
  end
  else if accept_ident st "for" then parse_for st ~kind:Stmt.Sequential
  else if accept_ident st "if" then parse_if st
  else if accept_ident st "sync" then begin
    expect_punct st "(";
    expect_punct st ")";
    expect_punct st ";";
    Stmt.Sync
  end
  else begin
    let name = expect_ident st in
    match (peek st).token with
    | PUNCT "[" ->
        let idxs = parse_subscripts st in
        expect_punct st "=";
        let value = parse_expr st in
        expect_punct st ";";
        Stmt.Store (name, idxs, value)
    | PUNCT "=" ->
        advance st;
        let value = parse_expr st in
        expect_punct st ";";
        Stmt.Assign (name, value)
    | _ -> fail (line_of st) "expected '=' or '[' after %s" name
  end

and parse_for st ~kind =
  let header_line = line_of st in
  expect_punct st "(";
  let v = expect_ident st in
  expect_punct st "=";
  let lo = parse_expr st in
  expect_punct st ";";
  let v2 = expect_ident st in
  if v2 <> v then fail header_line "loop condition tests %s, not %s" v2 v;
  expect_punct st "<";
  let hi = parse_expr st in
  expect_punct st ";";
  let v3 = expect_ident st in
  if v3 <> v then fail header_line "loop increment updates %s, not %s" v3 v;
  let step =
    if accept_punct st "++" then 1
    else if accept_punct st "+=" then begin
      match (peek st).token with
      | INT k when k >= 1 ->
          advance st;
          k
      | _ -> fail (line_of st) "expected a positive step after '+='"
    end
    else fail (line_of st) "expected '++' or '+= k'"
  in
  expect_punct st ")";
  let body = parse_block st in
  Stmt.For { var = v; lo; hi; step; kind; body }

and parse_if st =
  expect_punct st "(";
  let cond = parse_expr st in
  expect_punct st ")";
  let then_branch = parse_block st in
  let else_branch = if accept_ident st "else" then parse_block st else [] in
  Stmt.If (cond, then_branch, else_branch)

(* ---- kernel header ---- *)

let parse_params st =
  expect_punct st "(";
  if accept_punct st ")" then []
  else begin
    let rec go acc =
      let name = expect_ident st in
      let rec rank n =
        if accept_punct st "[" then begin
          (match (peek st).token with
          | IDENT "N" -> advance st
          | _ -> fail (line_of st) "array extents must be N");
          expect_punct st "]";
          rank (n + 1)
        end
        else n
      in
      let dims = rank 0 in
      if dims < 1 || dims > 3 then
        fail (line_of st) "array %s must have rank 1-3" name;
      Hashtbl.replace st.arrays name dims;
      let decl = Kernel.array_decl name dims in
      if accept_punct st "," then go (decl :: acc)
      else begin
        expect_punct st ")";
        List.rev (decl :: acc)
      end
    in
    go []
  end

let parse ?description text =
  let annotation, text = extract_annotation text in
  match lex text with
  | exception Fail e -> Error e
  | toks -> (
      let st = { toks; pos = 0; arrays = Hashtbl.create 8 } in
      try
        if not (accept_ident st "kernel") then
          fail (line_of st) "expected 'kernel'";
        let name = expect_ident st in
        let arrays = parse_params st in
        let body = parse_block st in
        (match (peek st).token with
        | EOF -> ()
        | _ -> fail (line_of st) "trailing input after the kernel body");
        let description =
          Option.value ~default:("parsed kernel " ^ name) description
        in
        let kernel =
          try Kernel.make ~name ~description ~arrays body
          with Invalid_argument msg -> fail 1 "%s" msg
        in
        (match Typecheck.kernel kernel with
        | Ok () -> ()
        | Error msg -> fail 1 "type error: %s" msg);
        let spec =
          match annotation with
          | None -> None
          | Some block -> (
              match Tuning_spec.parse block with
              | Ok spec -> Some spec
              | Error msg -> fail 1 "bad tuning annotation: %s" msg)
        in
        Ok { kernel; spec }
      with Fail e -> Error e)

let parse_exn ?description text =
  match parse ?description text with
  | Ok p -> p
  | Error e -> Gat_util.Error.fail Parse (error_to_string e)
