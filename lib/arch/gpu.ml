type t = {
  name : string;
  cc : Compute_capability.t;
  global_mem_mb : int;
  multiprocessors : int;
  cores_per_mp : int;
  gpu_clock_mhz : int;
  mem_clock_mhz : int;
  l2_cache_kb : int;
  const_mem_bytes : int;
  smem_per_block : int;
  smem_per_mp : int;
  reg_file_size : int;
  warp_size : int;
  threads_per_mp : int;
  threads_per_block : int;
  blocks_per_mp : int;
  threads_per_warp : int;
  warps_per_mp : int;
  reg_alloc_unit : int;
  regs_per_thread : int;
  mem_latency_cycles : float;
  l2_latency_cycles : float;
}

let cuda_cores t = t.multiprocessors * t.cores_per_mp

let m2050 =
  {
    name = "M2050";
    cc = Compute_capability.Sm20;
    global_mem_mb = 3072;
    multiprocessors = 14;
    cores_per_mp = 32;
    gpu_clock_mhz = 1147;
    mem_clock_mhz = 1546;
    l2_cache_kb = 786;
    const_mem_bytes = 65536;
    smem_per_block = 49152;
    smem_per_mp = 49152;
    reg_file_size = 32768;
    warp_size = 32;
    threads_per_mp = 1536;
    threads_per_block = 1024;
    blocks_per_mp = 8;
    threads_per_warp = 32;
    warps_per_mp = 48;
    reg_alloc_unit = 64;
    regs_per_thread = 63;
    mem_latency_cycles = 600.0;
    l2_latency_cycles = 240.0;
  }

let k20 =
  {
    name = "K20";
    cc = Compute_capability.Sm35;
    global_mem_mb = 11520;
    multiprocessors = 13;
    cores_per_mp = 192;
    gpu_clock_mhz = 824;
    mem_clock_mhz = 2505;
    l2_cache_kb = 1572;
    const_mem_bytes = 65536;
    smem_per_block = 49152;
    smem_per_mp = 49152;
    reg_file_size = 65536;
    warp_size = 32;
    threads_per_mp = 2048;
    threads_per_block = 1024;
    blocks_per_mp = 16;
    threads_per_warp = 32;
    warps_per_mp = 64;
    reg_alloc_unit = 256;
    regs_per_thread = 255;
    mem_latency_cycles = 440.0;
    l2_latency_cycles = 200.0;
  }

let m40 =
  {
    name = "M40";
    cc = Compute_capability.Sm52;
    global_mem_mb = 12288;
    multiprocessors = 24;
    cores_per_mp = 128;
    gpu_clock_mhz = 1140;
    mem_clock_mhz = 5000;
    l2_cache_kb = 3146;
    const_mem_bytes = 65536;
    smem_per_block = 49152;
    smem_per_mp = 98304;
    reg_file_size = 65536;
    warp_size = 32;
    threads_per_mp = 2048;
    threads_per_block = 1024;
    blocks_per_mp = 32;
    threads_per_warp = 32;
    warps_per_mp = 64;
    reg_alloc_unit = 256;
    regs_per_thread = 255;
    mem_latency_cycles = 370.0;
    l2_latency_cycles = 190.0;
  }

let p100 =
  {
    name = "P100";
    cc = Compute_capability.Sm60;
    global_mem_mb = 17066;
    multiprocessors = 56;
    cores_per_mp = 64;
    gpu_clock_mhz = 405;
    mem_clock_mhz = 715;
    l2_cache_kb = 4194;
    const_mem_bytes = 65536;
    smem_per_block = 49152;
    smem_per_mp = 65536;
    reg_file_size = 65536;
    warp_size = 32;
    threads_per_mp = 2048;
    threads_per_block = 1024;
    blocks_per_mp = 32;
    threads_per_warp = 32;
    warps_per_mp = 64;
    reg_alloc_unit = 256;
    regs_per_thread = 255;
    mem_latency_cycles = 280.0;
    l2_latency_cycles = 160.0;
  }

let all = [ m2050; k20; m40; p100 ]

let of_name name =
  let needle = String.lowercase_ascii name in
  List.find_opt
    (fun gpu ->
      String.lowercase_ascii gpu.name = needle
      || String.lowercase_ascii (Compute_capability.family gpu.cc) = needle)
    all

let of_cc cc = List.find (fun gpu -> gpu.cc = cc) all
let family t = Compute_capability.family t.cc

(* Every model-relevant hardware limit, one line: cache keys built over
   this string change whenever a device description is edited, so no
   persistent entry can outlive the hardware model that produced it.
   The exact historical Disk_cache rendering — existing sweep-cache
   keys survive the move here. *)
let identity g =
  Printf.sprintf "%s/%s/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%d/%h/%h"
    g.name
    (Compute_capability.to_string g.cc)
    g.multiprocessors g.cores_per_mp g.gpu_clock_mhz g.mem_clock_mhz
    g.l2_cache_kb g.smem_per_block g.smem_per_mp g.reg_file_size g.warp_size
    g.threads_per_mp g.threads_per_block g.blocks_per_mp g.warps_per_mp
    g.reg_alloc_unit g.regs_per_thread g.threads_per_warp g.mem_latency_cycles
    g.l2_latency_cycles
