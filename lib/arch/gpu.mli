(** GPU machine descriptions: every hardware limit from Table I of the
    paper, for the four devices of its testbed.

    Field names follow the paper's notation where a superscript [cc]
    denotes a limit fixed by the compute capability and subscripts give
    the resource scope ([mp] = per multiprocessor, [b] = per block,
    [w] = per warp, [t] = per thread). *)

type t = {
  name : string;  (** Device name, e.g. ["M2050"]. *)
  cc : Compute_capability.t;  (** CUDA compute capability. *)
  global_mem_mb : int;  (** Global memory (MB). *)
  multiprocessors : int;  (** [mp]: number of SMs. *)
  cores_per_mp : int;  (** CUDA cores per SM. *)
  gpu_clock_mhz : int;  (** Core clock (MHz). *)
  mem_clock_mhz : int;  (** Memory clock (MHz). *)
  l2_cache_kb : int;  (** L2 cache (KB). *)
  const_mem_bytes : int;  (** Constant memory (bytes). *)
  smem_per_block : int;  (** [S{^cc}{_B}]: shared memory per block (bytes). *)
  smem_per_mp : int;  (** [S{^cc}{_mp}]: shared memory per SM (bytes). *)
  reg_file_size : int;  (** [R{^cc}{_fs}]: 32-bit registers per SM. *)
  warp_size : int;  (** [W{_B}]: threads per warp (32). *)
  threads_per_mp : int;  (** [T{^cc}{_mp}]: max resident threads per SM. *)
  threads_per_block : int;  (** [T{^cc}{_B}]: max threads per block. *)
  blocks_per_mp : int;  (** [B{^cc}{_mp}]: max resident blocks per SM. *)
  threads_per_warp : int;  (** [T{^cc}{_W}]: threads per warp (32). *)
  warps_per_mp : int;  (** [W{^cc}{_mp}]: max resident warps per SM. *)
  reg_alloc_unit : int;  (** [R{^cc}{_B}]: register allocation granularity. *)
  regs_per_thread : int;  (** [R{^cc}{_T}]: max registers per thread. *)
  mem_latency_cycles : float;
      (** Average global-memory latency in cycles (simulator substrate;
          not part of Table I — drawn from vendor microbenchmarks). *)
  l2_latency_cycles : float;  (** Average L2 hit latency (simulator). *)
}

val cuda_cores : t -> int
(** Total CUDA cores, [multiprocessors * cores_per_mp]. *)

val m2050 : t
(** Fermi Tesla M2050 (cc 2.0). *)

val k20 : t
(** Kepler Tesla K20 (cc 3.5). *)

val m40 : t
(** Maxwell Tesla M40 (cc 5.2). *)

val p100 : t
(** Pascal Tesla P100 (cc 6.0). *)

val all : t list
(** The testbed, in Table I column order. *)

val of_name : string -> t option
(** Lookup by case-insensitive device name or family name. *)

val of_cc : Compute_capability.t -> t
(** The testbed device with the given capability. *)

val family : t -> string
(** Family name of the device's capability. *)

val identity : t -> string
(** Every model-relevant hardware limit rendered into one stable line.
    Persistent cache keys (sweep entries, compile artifacts) hash this
    string, so editing a device description invalidates its entries. *)
