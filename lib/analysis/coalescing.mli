(** Static global-memory coalescing analysis.

    From the affine form of each global access address ({!Affine}),
    counts the memory transactions one warp (32 lanes) issues:

    - Fermi (sm_20) coalesces through L1 in 128-byte cache lines;
    - Kepler and later (sm_35/52/60) fetch 32-byte L2 sectors.

    A per-lane byte stride [s] makes a warp touch the segments covered
    by [[k·s, k·s + 4)] for [k = 0..31] (assuming a segment-aligned
    base, the launch-time guarantee for the paper's kernels): stride 4
    is one 128-byte line, stride [4n] (a column of a row-major matrix)
    is 32 distinct segments.  Transactions are also reported normalized
    to 128-byte units so Fermi and Kepler numbers are comparable and so
    the simulator can consume them uniformly. *)

type granularity = Line128 | Sector32

val granularity_of_cc : Gat_arch.Compute_capability.t -> granularity
val segment_bytes : granularity -> int

type pattern =
  | Broadcast  (** All lanes read the same element (or a sub-unit stride). *)
  | Stride of int  (** Constant per-lane stride in bytes. *)
  | Large of Affine.coeff  (** Stride grows with n — every lane its own segment. *)
  | Unknown  (** Data-dependent or unanalyzable; worst case assumed. *)

val pattern_of_address : Affine.value -> pattern
val pattern_to_string : pattern -> string

val segments_per_warp : granularity -> pattern -> int
(** Distinct segments one full warp touches; [Unknown] counts 32. *)

type access = {
  block_index : int;
  block_label : string;
  instr_index : int;
  op : Gat_isa.Opcode.t;
  kind : [ `Load | `Store ];
  pattern : pattern;
  tid_stride : Affine.coeff;  (** Per-lane stride of the byte address. *)
  iter_stride : Affine.coeff;  (** Per-loop-iteration stride, for locality hints. *)
  segments : int;  (** Native segments per warp on this architecture. *)
  transactions : float;  (** Normalized to 128-byte transaction units. *)
}

val uncoalesced : access -> bool
(** More than one 128-byte transaction per warp. *)

val analyze : Gat_arch.Gpu.t -> Gat_cfg.Cfg.t -> access list
(** All [LDG]/[STG]/[TEX] accesses in block order. *)

val of_sites : Gat_arch.Gpu.t -> Affine.access_site list -> access list
(** Same, from precomputed {!Affine.memory_sites} (shared with
    {!Bank_conflicts} to avoid re-running the affine pass). *)

val block_transactions : Gat_arch.Gpu.t -> Gat_cfg.Cfg.t -> (string * access list) list
(** Accesses grouped by block label, emission order preserved — the
    shape the simulator consumes. *)
