(** Static shared-memory bank-conflict analysis.

    Shared memory is striped across 32 banks.  Fermi, Maxwell and
    Pascal stripe in 4-byte words; Kepler's banks are 8 bytes wide.  A
    warp's access replays once per additional distinct word that any
    single bank must serve: with per-lane byte stride [s] and bank
    width [w], lane [k] touches word [k·s / w], and the replay factor
    is the maximum, over banks, of the number of distinct words mapping
    to that bank.  Lanes reading the same word broadcast for free
    (replay 1); stride [w] is conflict-free; stride [32·w] is a 32-way
    conflict (replay 32). *)

type mode = B4 | B8

val mode_of_cc : Gat_arch.Compute_capability.t -> mode
val bank_width_bytes : mode -> int
val banks : int
(** Always 32. *)

val replay_of_stride : mode -> int -> int
(** Replay factor for a constant per-lane byte stride. *)

type conflict = {
  block_index : int;
  block_label : string;
  instr_index : int;
  op : Gat_isa.Opcode.t;
  kind : [ `Load | `Store ];
  tid_stride : Affine.coeff;
  replay : int;  (** ≥ 1; 1 means conflict-free. *)
}

val conflicted : conflict -> bool

val analyze : Gat_arch.Gpu.t -> Gat_cfg.Cfg.t -> conflict list
(** All [LDS]/[STS] accesses in block order. *)

val of_sites : Gat_arch.Gpu.t -> Affine.access_site list -> conflict list
