open Gat_isa

let kind_to_string = function `Load -> "load" | `Store -> "store"

type findings = {
  races : int;
  divergent_barriers : int;
  spill_instructions : int;
}

let clean f = f.races = 0 && f.divergent_barriers = 0 && f.spill_instructions = 0

let findings_to_string f =
  let parts = [] in
  let parts =
    if f.spill_instructions > 0 then
      Printf.sprintf "%d spill instructions" f.spill_instructions :: parts
    else parts
  in
  let parts =
    if f.divergent_barriers > 0 then
      Printf.sprintf "%d divergent barriers" f.divergent_barriers :: parts
    else parts
  in
  let parts =
    if f.races > 0 then
      Printf.sprintf "%d shared-memory races" f.races :: parts
    else parts
  in
  if parts = [] then "clean" else String.concat ", " parts

type t = { text : string; findings : findings }

let report ~gpu ~threads_per_block ?regs_per_thread ?(spill_loads = 0)
    ?(spill_stores = 0) ?(stack_frame = 0) (program : Program.t) =
  let regs_per_thread =
    Option.value ~default:program.Program.regs_per_thread regs_per_thread
  in
  let cfg = Gat_cfg.Cfg.of_program program in
  let affine = Affine.analyze cfg in
  let sites = Affine.memory_sites cfg affine in
  let globals = Coalescing.of_sites gpu sites in
  let shared = Bank_conflicts.of_sites gpu sites in
  let divergence = Gat_cfg.Divergence.compute cfg in
  let reachable = Gat_cfg.Cfg.reachable cfg in
  let verify = Verify.run ~threads_per_block program in
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let header =
    Printf.sprintf "lint: %s on %s (%s)" program.Program.name
      gpu.Gat_arch.Gpu.name
      (Gat_arch.Compute_capability.to_string gpu.Gat_arch.Gpu.cc)
  in
  line "%s" header;
  line "%s" (String.make (String.length header) '=');
  line "";
  let g = Coalescing.granularity_of_cc gpu.Gat_arch.Gpu.cc in
  line "global memory (%dB segments):" (Coalescing.segment_bytes g);
  if globals = [] then line "  no global accesses"
  else begin
    let label_width =
      List.fold_left
        (fun w (a : Coalescing.access) -> max w (String.length a.Coalescing.block_label))
        0 globals
    in
    List.iter
      (fun (a : Coalescing.access) ->
        line "  %-*s +%-2d %-4s %-5s  %-12s %2d seg/warp  %5.2fx128B  %s"
          label_width a.Coalescing.block_label a.Coalescing.instr_index
          (Opcode.mnemonic a.Coalescing.op)
          (kind_to_string a.Coalescing.kind)
          (Coalescing.pattern_to_string a.Coalescing.pattern)
          a.Coalescing.segments a.Coalescing.transactions
          (if Coalescing.uncoalesced a then "UNCOALESCED" else "ok"))
      globals;
    let bad = List.length (List.filter Coalescing.uncoalesced globals) in
    line "  %d/%d accesses uncoalesced" bad (List.length globals)
  end;
  line "";
  let mode = Bank_conflicts.mode_of_cc gpu.Gat_arch.Gpu.cc in
  line "shared memory (%d banks x %dB):" Bank_conflicts.banks
    (Bank_conflicts.bank_width_bytes mode);
  if shared = [] then line "  no shared-memory accesses"
  else begin
    List.iter
      (fun (c : Bank_conflicts.conflict) ->
        line "  %s +%-2d %-4s %-5s  stride %sB  replay %dx  %s"
          c.Bank_conflicts.block_label c.Bank_conflicts.instr_index
          (Opcode.mnemonic c.Bank_conflicts.op)
          (kind_to_string c.Bank_conflicts.kind)
          (Affine.coeff_to_string c.Bank_conflicts.tid_stride)
          c.Bank_conflicts.replay
          (if Bank_conflicts.conflicted c then "CONFLICT" else "ok"))
      shared;
    let bad = List.length (List.filter Bank_conflicts.conflicted shared) in
    line "  %d/%d accesses bank-conflicted" bad (List.length shared)
  end;
  line "";
  line "divergence:";
  let divergent = Gat_cfg.Divergence.divergent_branches divergence in
  let total = Gat_cfg.Divergence.branch_count divergence in
  if total = 0 then line "  no conditional branches"
  else
    line "  %d/%d conditional branches divergent (%.1f%%)%s"
      (List.length divergent) total
      (100.0 *. Gat_cfg.Divergence.divergent_fraction divergence)
      (if divergent = [] then ""
       else
         ": "
         ^ String.concat " "
             (List.map (fun i -> cfg.Gat_cfg.Cfg.labels.(i)) divergent));
  line "";
  line "spills:";
  if spill_loads = 0 && spill_stores = 0 && stack_frame = 0 then line "  none"
  else
    line "  %d spill loads, %d spill stores, %dB stack frame" spill_loads
      spill_stores stack_frame;
  line "";
  line "verify (TC=%d):" threads_per_block;
  line "  barriers: %d (%d interval%s), shared accesses: %d"
    verify.Verify.barrier_count verify.Verify.interval_count
    (if verify.Verify.interval_count = 1 then "" else "s")
    verify.Verify.shared_accesses;
  List.iter
    (fun f -> line "  %s" (Barrier_safety.finding_to_string f))
    verify.Verify.divergent_barriers;
  List.iter
    (fun f -> line "  %s" (Races.finding_to_string ~threads_per_block f))
    verify.Verify.races;
  line "  verdict: %s" (Verify.verdict verify);
  line "";
  line "occupancy:";
  let occ =
    Gat_core.Occupancy.calculate gpu
      (Gat_core.Occupancy.input ~regs_per_thread
         ~smem_per_block:(Program.smem_per_block program) ~threads_per_block ())
  in
  line "  %.1f%% (%d/%d warps), limited by %s"
    (100.0 *. occ.Gat_core.Occupancy.occupancy)
    occ.Gat_core.Occupancy.active_warps gpu.Gat_arch.Gpu.warps_per_mp
    (Gat_core.Occupancy.limiter_name occ.Gat_core.Occupancy.limiter);
  line "";
  line "unreachable blocks:";
  let dead = ref [] in
  Array.iteri
    (fun i r -> if not r then dead := cfg.Gat_cfg.Cfg.labels.(i) :: !dead)
    reachable;
  if !dead = [] then line "  none"
  else line "  %s" (String.concat " " (List.rev !dead));
  {
    text = Buffer.contents buf;
    findings =
      {
        races = List.length verify.Verify.races;
        divergent_barriers = List.length verify.Verify.divergent_barriers;
        spill_instructions = spill_loads + spill_stores;
      };
  }

let render ~gpu ~threads_per_block ?regs_per_thread ?spill_loads ?spill_stores
    ?stack_frame program =
  (report ~gpu ~threads_per_block ?regs_per_thread ?spill_loads ?spill_stores
     ?stack_frame program)
    .text
