open Gat_arch

let peak_bandwidth_gbs (gpu : Gpu.t) =
  match gpu.Gpu.cc with
  | Compute_capability.Sm20 -> 148.0
  | Compute_capability.Sm35 -> 208.0
  | Compute_capability.Sm52 -> 288.0
  | Compute_capability.Sm60 -> 732.0

let bytes_per_cycle_per_sm (gpu : Gpu.t) =
  peak_bandwidth_gbs gpu *. 1.0e9
  /. (float_of_int gpu.Gpu.gpu_clock_mhz *. 1.0e6)
  /. float_of_int gpu.Gpu.multiprocessors

let has_configurable_split (gpu : Gpu.t) =
  match gpu.Gpu.cc with
  | Compute_capability.Sm20 | Compute_capability.Sm35 -> true
  | Compute_capability.Sm52 | Compute_capability.Sm60 -> false

let l1_hit_fraction (gpu : Gpu.t) ~l1_pref_kb ~transactions =
  (* A warp touching few lines has high line reuse across iterations. *)
  let locality = 1.0 /. Float.max 1.0 transactions in
  let base =
    match gpu.Gpu.cc with
    | Compute_capability.Sm20 -> 0.55
    | Compute_capability.Sm35 -> 0.60
    | Compute_capability.Sm52 -> 0.70
    | Compute_capability.Sm60 -> 0.75
  in
  let pref_bonus =
    if has_configurable_split gpu && l1_pref_kb >= 48 then 0.15 else 0.0
  in
  Float.min 0.95 ((base +. pref_bonus) *. locality)

let effective_latency (gpu : Gpu.t) ~l1_pref_kb ~staging ~transactions =
  let hit = l1_hit_fraction gpu ~l1_pref_kb ~transactions in
  let raw =
    (hit *. gpu.Gpu.l2_latency_cycles)
    +. ((1.0 -. hit) *. gpu.Gpu.mem_latency_cycles)
  in
  (* SC staging pipelines refills ahead of use. *)
  raw /. (1.0 +. (0.15 *. float_of_int (max 0 (staging - 1))))

let access_transactions (a : Coalescing.access) =
  a.Coalescing.transactions

let access_latency gpu ~l1_pref_kb ~staging a =
  effective_latency gpu ~l1_pref_kb ~staging
    ~transactions:(access_transactions a)

let smem_per_mp_effective (gpu : Gpu.t) ~l1_pref_kb =
  if has_configurable_split gpu then
    (* 64 KB array split between L1 and shared memory. *)
    Some ((64 - l1_pref_kb) * 1024)
  else None
