(** The static kernel safety verifier ([gat verify]).

    Aggregates the two safety passes over one compiled program:
    {!Barrier_safety} (no [BAR] under thread-dependent control flow)
    and {!Races} (no two distinct threads can touch overlapping
    shared-memory bytes with at least one write inside a barrier
    interval).  A program with no findings is {e verified safe} under
    the analyses' abstractions; findings make it unsafe and the sweep
    engine classifies the variant accordingly
    ({!Gat_tuner.Variant.unsafe}).

    The verdict depends only on the instruction structure and the
    launch's thread count — never on block weights, block count, or
    the problem size — which is what makes per-variant verdict caching
    ({!Gat_tuner} [Verdict_cache]) sound across the (BC, N) axes.

    Observability: each run increments [verify.checked] plus
    [verify.unsafe] / [verify.divergent_barriers] / [verify.races]
    counters and runs inside a [verify.run] trace span. *)

type report = {
  program_name : string;
  threads_per_block : int;
  barrier_count : int;
  interval_count : int;  (** Barrier intervals = barriers + 1. *)
  shared_accesses : int;  (** LDS/STS instructions inspected. *)
  divergent_barriers : Barrier_safety.finding list;
  races : Races.finding list;
}

val run : threads_per_block:int -> Gat_isa.Program.t -> report

val safe : report -> bool
(** No findings of either kind. *)

val verdict : report -> string
(** ["SAFE"] or ["UNSAFE"]. *)

val summary : report -> string
(** One line: verdict plus finding counts, e.g.
    ["UNSAFE: 1 divergent barrier, 2 shared-memory races"]. *)

val render : report -> string
(** The stable plain-text report printed by [gat verify] and golden
    tests. *)
