type mode = B4 | B8

let mode_of_cc cc =
  match cc with
  | Gat_arch.Compute_capability.Sm35 -> B8
  | Gat_arch.Compute_capability.Sm20 | Gat_arch.Compute_capability.Sm52
  | Gat_arch.Compute_capability.Sm60 ->
      B4

let bank_width_bytes = function B4 -> 4 | B8 -> 8
let banks = 32
let warp_size = 32

let replay_of_stride mode s =
  if s = 0 then 1
  else begin
    let w = bank_width_bytes mode in
    (* Distinct words per bank over one warp; same-word lanes broadcast. *)
    let words_by_bank = Hashtbl.create 64 in
    for k = 0 to warp_size - 1 do
      let word =
        let byte = k * s in
        if byte >= 0 then byte / w else ((byte + 1) / w) - 1
      in
      let bank = ((word mod banks) + banks) mod banks in
      let words =
        Option.value ~default:[] (Hashtbl.find_opt words_by_bank bank)
      in
      if not (List.mem word words) then
        Hashtbl.replace words_by_bank bank (word :: words)
    done;
    Hashtbl.fold (fun _ words acc -> max acc (List.length words)) words_by_bank 1
  end

type conflict = {
  block_index : int;
  block_label : string;
  instr_index : int;
  op : Gat_isa.Opcode.t;
  kind : [ `Load | `Store ];
  tid_stride : Affine.coeff;
  replay : int;
}

let conflicted c = c.replay > 1

let of_sites gpu sites =
  let mode = mode_of_cc gpu.Gat_arch.Gpu.cc in
  List.filter_map
    (fun (s : Affine.access_site) ->
      if not (Gat_isa.Opcode.is_shared_memory s.Affine.op) then None
      else
        let tid = s.Affine.address.Affine.tid in
        let replay =
          match tid with
          | Affine.Known { k = 0; _ } -> 1
          | Affine.Known { k; e = 0 } -> replay_of_stride mode k
          | Affine.Known { e; _ } when e < 0 -> 1
          | Affine.Known _ | Affine.Unknown ->
              (* n-dependent or data-dependent smem stride: assume the
                 worst a 32-bank crossbar can do. *)
              banks
        in
        Some
          {
            block_index = s.Affine.block_index;
            block_label = s.Affine.block_label;
            instr_index = s.Affine.instr_index;
            op = s.Affine.op;
            kind =
              (if Gat_isa.Opcode.is_load s.Affine.op then `Load else `Store);
            tid_stride = tid;
            replay;
          })
    sites

let analyze gpu cfg = of_sites gpu (Affine.memory_sites cfg (Affine.analyze cfg))
