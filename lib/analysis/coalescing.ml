type granularity = Line128 | Sector32

let granularity_of_cc cc =
  match cc with
  | Gat_arch.Compute_capability.Sm20 -> Line128
  | Gat_arch.Compute_capability.Sm35 | Gat_arch.Compute_capability.Sm52
  | Gat_arch.Compute_capability.Sm60 ->
      Sector32

let segment_bytes = function Line128 -> 128 | Sector32 -> 32

type pattern =
  | Broadcast
  | Stride of int
  | Large of Affine.coeff
  | Unknown

let pattern_of_address (v : Affine.value) =
  match v.Affine.tid with
  | Affine.Known { k = 0; _ } -> Broadcast
  | Affine.Known { k; e = 0 } -> Stride k
  | Affine.Known { e; _ } when e < 0 ->
      (* Sub-unit stride: adjacent lanes mostly share an element. *)
      Broadcast
  | Affine.Known _ as c -> Large c
  | Affine.Unknown -> Unknown

let pattern_to_string = function
  | Broadcast -> "broadcast"
  | Stride s -> Printf.sprintf "stride %dB" s
  | Large c -> Printf.sprintf "stride %sB" (Affine.coeff_to_string c)
  | Unknown -> "unknown"

let warp_size = 32
let access_bytes = 4

let segments_per_warp g pattern =
  let seg = segment_bytes g in
  match pattern with
  | Broadcast -> 1
  | Stride 0 -> 1
  | Stride s ->
      (* Count distinct segments covered by [k·s, k·s + 4) over a warp;
         the base is assumed segment-aligned. *)
      let touched = Hashtbl.create 64 in
      for k = 0 to warp_size - 1 do
        let lo = k * s in
        let hi = lo + access_bytes - 1 in
        let div a b = if a >= 0 then a / b else -(((-a) + b - 1) / b) in
        for segment = div lo seg to div hi seg do
          Hashtbl.replace touched segment ()
        done
      done;
      Hashtbl.length touched
  | Large _ | Unknown -> warp_size

let transactions_128 g segments =
  float_of_int (segments * segment_bytes g) /. 128.0

type access = {
  block_index : int;
  block_label : string;
  instr_index : int;
  op : Gat_isa.Opcode.t;
  kind : [ `Load | `Store ];
  pattern : pattern;
  tid_stride : Affine.coeff;
  iter_stride : Affine.coeff;
  segments : int;
  transactions : float;
}

let uncoalesced a = a.transactions > 1.0

let of_sites gpu sites =
  let g = granularity_of_cc gpu.Gat_arch.Gpu.cc in
  List.filter_map
    (fun (s : Affine.access_site) ->
      if not (Gat_isa.Opcode.is_global_memory s.Affine.op) then None
      else
        let pattern = pattern_of_address s.Affine.address in
        let segments = segments_per_warp g pattern in
        Some
          {
            block_index = s.Affine.block_index;
            block_label = s.Affine.block_label;
            instr_index = s.Affine.instr_index;
            op = s.Affine.op;
            kind =
              (if Gat_isa.Opcode.is_load s.Affine.op then `Load else `Store);
            pattern;
            tid_stride = s.Affine.address.Affine.tid;
            iter_stride = s.Affine.address.Affine.iter;
            segments;
            transactions = transactions_128 g segments;
          })
    sites

let analyze gpu cfg = of_sites gpu (Affine.memory_sites cfg (Affine.analyze cfg))

let block_transactions gpu cfg =
  let accesses = analyze gpu cfg in
  let labels = cfg.Gat_cfg.Cfg.labels in
  Array.to_list labels
  |> List.filter_map (fun label ->
         match List.filter (fun a -> a.block_label = label) accesses with
         | [] -> None
         | l -> Some (label, l))
