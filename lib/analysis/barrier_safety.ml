open Gat_isa

module Int_set = Set.Make (Int)

type finding = {
  block_index : int;
  block_label : string;
  instr_index : int;
  branch_indices : int list;
  branch_labels : string list;
}

module Open_lattice = struct
  type t = Int_set.t

  let bottom = Int_set.empty
  let equal = Int_set.equal
  let join = Int_set.union
end

module Solver = Gat_cfg.Dataflow.Make (Open_lattice)

let check (cfg : Gat_cfg.Cfg.t) =
  let divergence = Gat_cfg.Divergence.compute cfg in
  let divergent =
    Int_set.of_list (Gat_cfg.Divergence.divergent_branches divergence)
  in
  if Int_set.is_empty divergent then []
  else begin
    let pdom = Gat_cfg.Postdominators.compute cfg in
    (* A branch [d] is still open at block [b] unless [b] post-dominates
       [d] — then every lane that left [d] must pass through [b], so the
       warp has reconverged (the [ipdom] closes it, and so does every
       later block on the unique path to the exit).  [b = d] itself
       stays open: the branch's own block ends in the divergent jump. *)
    let closes b d =
      b <> d && Gat_cfg.Postdominators.postdominates pdom b d
    in
    let effective b incoming = Int_set.filter (fun d -> not (closes b d)) incoming in
    let result =
      Solver.solve cfg ~transfer:(fun b _block incoming ->
          let s = effective b incoming in
          if Int_set.mem b divergent then Int_set.add b s else s)
    in
    let findings = ref [] in
    Array.iteri
      (fun bi (block : Basic_block.t) ->
        let open_set = effective bi result.Solver.before.(bi) in
        if not (Int_set.is_empty open_set) then
          List.iteri
            (fun ii (ins : Instruction.t) ->
              if Opcode.is_barrier ins.Instruction.op then
                let branch_indices = Int_set.elements open_set in
                findings :=
                  {
                    block_index = bi;
                    block_label = block.Basic_block.label;
                    instr_index = ii;
                    branch_indices;
                    branch_labels =
                      List.map
                        (fun d -> cfg.Gat_cfg.Cfg.labels.(d))
                        branch_indices;
                  }
                  :: !findings)
            block.Basic_block.body)
      cfg.Gat_cfg.Cfg.blocks;
    List.rev !findings
  end

let finding_to_string f =
  Printf.sprintf "BAR at %s+%d under divergent branch%s %s" f.block_label
    f.instr_index
    (if List.length f.branch_labels = 1 then "" else "es")
    (String.concat " " f.branch_labels)
