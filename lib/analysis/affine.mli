(** Affine address analysis: constant/affine propagation over registers.

    Approximates every integer register value as

    {v  value  ≈  base  +  tid_coeff · tid.x  +  iter_coeff · i  v}

    where [base] is either a known constant or an unknown
    block-uniform quantity, [tid_coeff] is the per-lane stride (the
    coefficient of [%tid.x]) and [iter_coeff] the per-iteration stride
    of the innermost sequential loop the value is updated in.
    Coefficients are symbolic in the problem size [n]: a coefficient is
    either [Known {k; e}], meaning [k·n{^e}], or [Unknown].  Negative
    exponents arise from the reciprocal-based integer-division sequence
    the lowering emits ([I2F]/[MUFU.RCP]/[FMUL]/[F2I]); the algebra
    tracks the division exactly modulo flooring, which cancels when a
    row/column decomposition is re-flattened into a byte address (the
    common case for the paper's kernels).

    This is a forward data-flow problem on {!Gat_cfg.Dataflow}: values
    join pointwise, loop-carried updates widen a changing constant base
    into an iteration stride (gcd of the observed deltas).  The result
    feeds {!Coalescing} and {!Bank_conflicts}. *)

type coeff =
  | Known of { k : int; e : int }
      (** [k·n{^e}] — [k = 0] means the coefficient is exactly zero
          (then [e = 0] by normalization). *)
  | Unknown

type value = {
  base : int option;  (** [Some c]: known constant; [None]: uniform unknown. *)
  mag : int;
      (** Magnitude exponent of the unknown uniform part ([≈ n{^mag}]);
          only meaningful when [base = None].  Lets [p / (n·n)] shift
          strides by the full [n{^2}]. *)
  tid : coeff;  (** Per-lane (coefficient of [%tid.x]) stride. *)
  iter : coeff;  (** Per-loop-iteration stride (widened loop deltas). *)
}

val top : value
(** Nothing known: lane- and iteration-varying in unknown ways. *)

val const : int -> value
val uniform : mag:int -> value

val zero_coeff : coeff
val is_uniform : value -> bool
(** Both strides exactly zero (constant across the warp). *)

val is_const : value -> bool
val join_value : value -> value -> value
val add : value -> value -> value
val mul : value -> value -> value
val recip : value -> value

val coeff_to_string : coeff -> string
(** Rendered in bytes-with-[n] notation, e.g. ["4n"], ["2/n"], ["0"],
    ["?"] — stable output used by the lint report. *)

type env = value Gat_isa.Register.Map.t

val eval_operand : env -> Gat_isa.Operand.t -> value
val transfer : env -> Gat_isa.Instruction.t -> env

type t

val analyze : Gat_cfg.Cfg.t -> t

val block_entry : t -> int -> env
(** Environment on entry to a block (bottom = empty for unreachable). *)

type access_site = {
  block_index : int;
  block_label : string;
  instr_index : int;  (** Position within the block body. *)
  op : Gat_isa.Opcode.t;
  space : Gat_isa.Operand.space;
  address : value;  (** Abstract byte address of the access. *)
}

val memory_sites : Gat_cfg.Cfg.t -> t -> access_site list
(** Every memory instruction that addresses through an [Addr] operand,
    in block/program order, with the abstract value of its address. *)
