(** Memory-system model of the simulator substrate.

    Bandwidths and cache behaviour are not part of the paper's Table I;
    they are drawn from the vendor datasheets of the same boards and
    exist only to give the simulated "hardware" a realistic memory side
    for the static analyzer to be compared against. *)

val peak_bandwidth_gbs : Gat_arch.Gpu.t -> float
(** Device global-memory bandwidth (GB/s): M2050 148, K20 208, M40 288,
    P100 732. *)

val bytes_per_cycle_per_sm : Gat_arch.Gpu.t -> float
(** Peak bandwidth divided over SMs, in bytes per core-clock cycle. *)

val l1_hit_fraction :
  Gat_arch.Gpu.t -> l1_pref_kb:int -> transactions:float -> float
(** Estimated L1/texture-cache hit fraction for an access whose warp
    footprint is [transactions] 128-byte lines: broadcast/unit-stride
    accesses cache well, scattered ones poorly; a 48 KB preference
    improves hits on Fermi/Kepler (configurable split) and is neutral
    on Maxwell/Pascal (dedicated L1). *)

val effective_latency :
  Gat_arch.Gpu.t -> l1_pref_kb:int -> staging:int -> transactions:float ->
  float
(** Average latency (cycles) of one global load: blend of L1-hit and
    DRAM latencies, divided by the software-prefetch pipelining factor
    when SC staging is active.  [transactions] normally comes from the
    static coalescing analysis — see {!access_latency}; the raw
    parameter form exists for tests and sensitivity studies. *)

val access_transactions : Coalescing.access -> float
(** Analysis-derived 128-byte transactions per warp for one access —
    the canonical source of the [transactions] knob. *)

val access_latency :
  Gat_arch.Gpu.t -> l1_pref_kb:int -> staging:int ->
  Coalescing.access -> float
(** {!effective_latency} with [transactions] taken from the analysis. *)

val smem_per_mp_effective : Gat_arch.Gpu.t -> l1_pref_kb:int -> int option
(** Shared-memory capacity per SM under the L1 preference: on
    Fermi/Kepler the 64 KB array is split (PL=48 leaves 16 KB of shared
    memory), on Maxwell/Pascal the preference has no structural effect
    ([None] = use the device default). *)
