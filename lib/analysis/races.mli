(** Shared-memory race detection: the two-thread abstraction.

    Within each barrier interval ({!Gat_cfg.Intervals}), every pair of
    [LDS]/[STS] accesses with at least one write is checked for a pair
    of {e distinct} symbolic threads [t1 <> t2] in [[0, TC)] that can
    touch overlapping 4-byte shared addresses.  Addresses come from
    the {!Affine} per-lane summaries: [base + tid_stride·t +
    iter_stride·j].  When both accesses resolve to known constant
    bases and per-lane strides, the checker searches for an exact
    thread-pair witness (linear in TC); loop-carried iteration strides
    are handled by a gcd congruence over the iteration lattice; and
    anything the affine domain cannot resolve (unknown strides,
    unknown uniform bases) is conservatively reported as a potential
    race — the analysis is a may-analysis, sound for race freedom but
    not complete.

    One benign exception: two stores whose stored values are both the
    {e same known constant} cannot produce an observable race (every
    interleaving leaves the same bytes), which admits the compiler's
    own staging prologue — all threads store literal zero to the same
    staging slots before the barrier. *)

type access = {
  block_index : int;
  block_label : string;
  instr_index : int;  (** Position within the block body. *)
  op : Gat_isa.Opcode.t;  (** [LDS] or [STS]. *)
  address : Affine.value;  (** Abstract byte address. *)
  stored : Affine.value option;  (** The value stored, for [STS]. *)
  predicated : bool;  (** Guarded accesses are assumed executed. *)
}

type kind = Write_write | Read_write

type witness =
  | Exact of int * int
      (** Two distinct thread indices that touch overlapping bytes. *)
  | May of string
      (** Conservative: why the pair could not be proved disjoint. *)

type finding = { first : access; second : access; kind : kind; witness : witness }

val shared_accesses : Gat_cfg.Cfg.t -> access list
(** Every shared-memory access, in block/program order. *)

val check : threads_per_block:int -> Gat_cfg.Cfg.t -> finding list
(** All racing pairs, ordered by (first, second) program position.
    [threads_per_block] bounds the symbolic thread indices — the TC
    condition under which an exact witness fires. *)

val address_to_string : Affine.value -> string
(** Stable rendering, e.g. ["0 + 4·t"], ["u + 4n·t + 4·j"]. *)

val access_to_string : access -> string
val finding_to_string : threads_per_block:int -> finding -> string
