(** Static diagnostics report ([gat lint]).

    Aggregates every static analysis into one stable, plain-text report
    suitable for golden tests: global-memory coalescing (per access:
    pattern, per-lane stride, segments and 128-byte transactions per
    warp), shared-memory bank conflicts (replay factors), divergent
    branches, register-spill traffic, the occupancy limiter, and blocks
    unreachable from the entry.

    Spill counts come from the compile log and are passed in by the
    caller, keeping this library independent of the compiler. *)

val render :
  gpu:Gat_arch.Gpu.t ->
  ?threads_per_block:int ->
  ?regs_per_thread:int ->
  ?spill_loads:int ->
  ?spill_stores:int ->
  ?stack_frame:int ->
  Gat_isa.Program.t ->
  string
(** [threads_per_block] defaults to 128; [regs_per_thread] defaults to
    the program's own count; spill statistics default to 0. *)
