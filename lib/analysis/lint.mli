(** Static diagnostics report ([gat lint]).

    Aggregates every static analysis into one stable, plain-text report
    suitable for golden tests: global-memory coalescing (per access:
    pattern, per-lane stride, segments and 128-byte transactions per
    warp), shared-memory bank conflicts (replay factors), divergent
    branches, register-spill traffic, the safety verifier's verdict
    ({!Verify}: divergent barriers and shared-memory races), the
    occupancy limiter, and blocks unreachable from the entry.

    Spill counts come from the compile log and are passed in by the
    caller, keeping this library independent of the compiler.
    [threads_per_block] is required: the report depends on the actual
    launch configuration (occupancy and the verifier's thread-pair
    witnesses), so callers must plumb the variant's TC through rather
    than rely on a default. *)

type findings = {
  races : int;  (** Potential shared-memory races ({!Races}). *)
  divergent_barriers : int;  (** [BAR]s under divergence ({!Barrier_safety}). *)
  spill_instructions : int;  (** Spill loads plus stores. *)
}
(** The conditions [gat lint --strict] gates on. *)

val clean : findings -> bool
(** No findings of any kind. *)

val findings_to_string : findings -> string
(** One line naming the non-zero counts (for the strict-mode error). *)

type t = { text : string; findings : findings }

val report :
  gpu:Gat_arch.Gpu.t ->
  threads_per_block:int ->
  ?regs_per_thread:int ->
  ?spill_loads:int ->
  ?spill_stores:int ->
  ?stack_frame:int ->
  Gat_isa.Program.t ->
  t
(** The full report plus the strict-mode finding counts.
    [regs_per_thread] defaults to the program's own count; spill
    statistics default to 0. *)

val render :
  gpu:Gat_arch.Gpu.t ->
  threads_per_block:int ->
  ?regs_per_thread:int ->
  ?spill_loads:int ->
  ?spill_stores:int ->
  ?stack_frame:int ->
  Gat_isa.Program.t ->
  string
(** [(report ...).text]. *)
