type report = {
  program_name : string;
  threads_per_block : int;
  barrier_count : int;
  interval_count : int;
  shared_accesses : int;
  divergent_barriers : Barrier_safety.finding list;
  races : Races.finding list;
}

let m_checked = Gat_util.Metrics.counter "verify.checked"
let m_unsafe = Gat_util.Metrics.counter "verify.unsafe"
let m_divergent = Gat_util.Metrics.counter "verify.divergent_barriers"
let m_races = Gat_util.Metrics.counter "verify.races"

let safe r = r.divergent_barriers = [] && r.races = []

let run ~threads_per_block (program : Gat_isa.Program.t) =
  Gat_util.Trace.span "verify.run"
    ~args:
      [
        ("program", Gat_util.Trace.S program.Gat_isa.Program.name);
        ("tc", Gat_util.Trace.I threads_per_block);
      ]
  @@ fun () ->
  let cfg = Gat_cfg.Cfg.of_program program in
  let intervals = Gat_cfg.Intervals.compute cfg in
  let divergent_barriers = Barrier_safety.check cfg in
  let races = Races.check ~threads_per_block cfg in
  let r =
    {
      program_name = program.Gat_isa.Program.name;
      threads_per_block;
      barrier_count = Gat_cfg.Intervals.barrier_count intervals;
      interval_count = Gat_cfg.Intervals.barrier_count intervals + 1;
      shared_accesses = List.length (Races.shared_accesses cfg);
      divergent_barriers;
      races;
    }
  in
  Gat_util.Metrics.incr m_checked;
  if not (safe r) then Gat_util.Metrics.incr m_unsafe;
  Gat_util.Metrics.incr ~by:(List.length divergent_barriers) m_divergent;
  Gat_util.Metrics.incr ~by:(List.length races) m_races;
  r

let verdict r = if safe r then "SAFE" else "UNSAFE"

let plural n singular plural_form =
  Printf.sprintf "%d %s" n (if n = 1 then singular else plural_form)

let summary r =
  if safe r then
    Printf.sprintf "SAFE: %s, %s checked"
      (plural r.barrier_count "barrier" "barriers")
      (plural r.shared_accesses "shared access" "shared accesses")
  else
    Printf.sprintf "UNSAFE: %s, %s"
      (plural
         (List.length r.divergent_barriers)
         "divergent barrier" "divergent barriers")
      (plural (List.length r.races) "shared-memory race" "shared-memory races")

let render r =
  let buf = Buffer.create 512 in
  let line fmt =
    Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  let header = Printf.sprintf "verify: %s (TC=%d)" r.program_name r.threads_per_block in
  line "%s" header;
  line "%s" (String.make (String.length header) '=');
  line "";
  line "barriers: %d (%d interval%s)" r.barrier_count r.interval_count
    (if r.interval_count = 1 then "" else "s");
  line "shared accesses: %d" r.shared_accesses;
  line "";
  line "divergent barriers:";
  if r.divergent_barriers = [] then line "  none"
  else
    List.iter
      (fun f -> line "  %s" (Barrier_safety.finding_to_string f))
      r.divergent_barriers;
  line "";
  line "shared-memory races:";
  if r.races = [] then line "  none"
  else
    List.iter
      (fun f ->
        line "  %s"
          (Races.finding_to_string ~threads_per_block:r.threads_per_block f))
      r.races;
  line "";
  line "verdict: %s" (verdict r);
  Buffer.contents buf
