open Gat_isa

type coeff = Known of { k : int; e : int } | Unknown

(* Exponent clamps keep the abstract domain finite-height (loop bodies
   that keep multiplying by a uniform would otherwise ascend forever). *)
let e_min = -8
let e_max = 8
let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let known k e =
  if k = 0 then Known { k = 0; e = 0 } else Known { k; e = clamp e_min e_max e }

let zero_coeff = known 0 0

let cadd a b =
  match (a, b) with
  | Known { k = 0; _ }, c | c, Known { k = 0; _ } -> c
  | Known x, Known y when x.e = y.e -> known (x.k + y.k) x.e
  (* Mixed degrees: the higher-degree term dominates the stride as n
     grows; keeping it is what lets floor-free division algebra cancel
     when decomposed indices are re-flattened. *)
  | Known x, Known y -> if x.e > y.e then Known x else Known y
  | Unknown, _ | _, Unknown -> Unknown

let cscale s c =
  match c with
  | Known { k; e } -> known (s * k) e
  | Unknown -> if s = 0 then zero_coeff else Unknown

let cshift d c =
  match c with
  | Known { k = 0; _ } -> zero_coeff
  | Known { k; e } -> known k (e + d)
  | Unknown -> Unknown

let cjoin a b = if a = b then a else Unknown

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* A loop-carried constant delta widens into an iteration stride; gcd
   keeps successive widenings on a strictly descending (terminating)
   chain. *)
let widen_iter it d =
  if d = 0 then it
  else
    match it with
    | Known { k = 0; _ } -> known (abs d) 0
    | Known { k; e = 0 } -> known (gcd (abs k) (abs d)) 0
    | Known _ | Unknown -> Unknown

type value = { base : int option; mag : int; tid : coeff; iter : coeff }

let top = { base = None; mag = 1; tid = Unknown; iter = Unknown }
let const c = { base = Some c; mag = 0; tid = zero_coeff; iter = zero_coeff }

let uniform ~mag =
  { base = None; mag = clamp e_min e_max mag; tid = zero_coeff; iter = zero_coeff }

let is_uniform v = v.tid = zero_coeff && v.iter = zero_coeff
let is_const v = is_uniform v && v.base <> None

(* Magnitude exponent of a value's unknown part; known constants are
   O(1) regardless of their numeric size. *)
let umag v = if v.base = None then v.mag else 0

let add a b =
  let base =
    match (a.base, b.base) with Some x, Some y -> Some (x + y) | _ -> None
  in
  let mag =
    match (a.base, b.base) with
    | None, None -> max a.mag b.mag
    | None, Some _ -> a.mag
    | Some _, None -> b.mag
    | Some _, Some _ -> 0
  in
  { base; mag; tid = cadd a.tid b.tid; iter = cadd a.iter b.iter }

let scale k v =
  if k = 0 then const 0
  else
    {
      base = Option.map (fun c -> k * c) v.base;
      mag = v.mag;
      tid = cscale k v.tid;
      iter = cscale k v.iter;
    }

let mul a b =
  if is_const a then scale (Option.get a.base) b
  else if is_const b then scale (Option.get b.base) a
  else if is_uniform a then
    (* uniform × affine: every stride scales by the uniform's magnitude. *)
    {
      base = None;
      mag = clamp e_min e_max (a.mag + umag b);
      tid = cshift a.mag b.tid;
      iter = cshift a.mag b.iter;
    }
  else if is_uniform b then
    {
      base = None;
      mag = clamp e_min e_max (b.mag + umag a);
      tid = cshift b.mag a.tid;
      iter = cshift b.mag a.iter;
    }
  else
    {
      base = None;
      mag = clamp e_min e_max (umag a + umag b);
      tid = Unknown;
      iter = Unknown;
    }

let recip a =
  if is_uniform a then
    match a.base with
    | Some 1 -> const 1
    | Some (-1) -> const (-1)
    | Some _ -> uniform ~mag:0
    | None -> uniform ~mag:(-a.mag)
  else top

let join_value a b =
  if a = b then a
  else
    let tid = cjoin a.tid b.tid in
    let iter0 = cjoin a.iter b.iter in
    let base, mag, iter =
      match (a.base, b.base) with
      | Some x, Some y when x = y -> (Some x, 0, iter0)
      | Some x, Some y -> (None, 0, widen_iter iter0 (y - x))
      | None, None -> (None, max a.mag b.mag, iter0)
      | None, Some _ -> (None, a.mag, iter0)
      | Some _, None -> (None, b.mag, iter0)
    in
    { base; mag; tid; iter }

let coeff_to_string c =
  match c with
  | Known { k = 0; _ } -> "0"
  | Known { k; e = 0 } -> string_of_int k
  | Known { k; e } when e > 0 ->
      let base = if k = 1 then "n" else if k = -1 then "-n" else Printf.sprintf "%dn" k in
      if e = 1 then base else Printf.sprintf "%s^%d" base e
  | Known { k; e } ->
      if e = -1 then Printf.sprintf "%d/n" k else Printf.sprintf "%d/n^%d" k (-e)
  | Unknown -> "?"

type env = value Register.Map.t

let lookup env r =
  match Register.Map.find_opt r env with Some v -> v | None -> top

let eval_operand env operand =
  match operand with
  | Operand.Reg r -> lookup env r
  | Operand.Imm i -> const i
  | Operand.FImm f -> const (int_of_float f)
  | Operand.Special (Operand.Tid_x | Operand.Laneid) ->
      { base = Some 0; mag = 0; tid = known 1 0; iter = zero_coeff }
  | Operand.Special (Operand.Ntid_x | Operand.Ctaid_x | Operand.Nctaid_x) ->
      uniform ~mag:1
  | Operand.Addr { base; offset; _ } -> add (lookup env base) (const offset)

let eval_instruction env (ins : Instruction.t) =
  let src i =
    match List.nth_opt ins.Instruction.srcs i with
    | Some o -> eval_operand env o
    | None -> top
  in
  let generic () =
    (* Anything built purely from uniforms stays uniform (sqrt, setp,
       min/max, logic ops, ...); otherwise we know nothing. *)
    let vs = List.map (eval_operand env) ins.Instruction.srcs in
    if vs <> [] && List.for_all is_uniform vs then
      uniform ~mag:(List.fold_left (fun m v -> max m (umag v)) 0 vs)
    else top
  in
  match ins.Instruction.op with
  | Opcode.MOV -> src 0
  | Opcode.IADD | Opcode.FADD | Opcode.DADD -> add (src 0) (src 1)
  | Opcode.IMUL | Opcode.FMUL | Opcode.DMUL -> mul (src 0) (src 1)
  | Opcode.IMAD | Opcode.FFMA | Opcode.DFMA -> add (mul (src 0) (src 1)) (src 2)
  | Opcode.I2F | Opcode.F2I | Opcode.F2F | Opcode.I2D | Opcode.D2I
  | Opcode.F2D | Opcode.D2F ->
      src 0
  | Opcode.MUFU_RCP -> recip (src 0)
  | Opcode.SHL -> (
      match List.nth_opt ins.Instruction.srcs 1 with
      | Some (Operand.Imm k) when k >= 0 && k < 31 -> mul (src 0) (const (1 lsl k))
      | _ -> generic ())
  | Opcode.LDC -> uniform ~mag:1
  | Opcode.LDG | Opcode.LDS | Opcode.LDL | Opcode.TEX -> top
  | Opcode.SEL -> join_value (src 0) (src 1)
  | _ -> generic ()

let transfer env (ins : Instruction.t) =
  match ins.Instruction.dst with
  | None -> env
  | Some d ->
      let v = eval_instruction env ins in
      let v =
        match ins.Instruction.pred with
        | None -> v
        | Some _ -> (
            (* A predicated write may not happen: keep the old value in
               the mix. *)
            match Register.Map.find_opt d env with
            | Some old -> join_value old v
            | None -> v)
      in
      Register.Map.add d v env

module Env_lattice = struct
  type t = env

  let bottom = Register.Map.empty
  let equal = Register.Map.equal ( = )

  let join a b =
    Register.Map.union (fun _ x y -> Some (join_value x y)) a b
end

module Solver = Gat_cfg.Dataflow.Make (Env_lattice)

type t = Solver.result

let analyze cfg =
  Solver.solve cfg ~transfer:(fun _ block env ->
      List.fold_left transfer env (Gat_cfg.Dataflow.block_instructions block))

let block_entry (t : t) i = t.Solver.before.(i)

type access_site = {
  block_index : int;
  block_label : string;
  instr_index : int;
  op : Gat_isa.Opcode.t;
  space : Gat_isa.Operand.space;
  address : value;
}

let memory_sites cfg (t : t) =
  let sites = ref [] in
  for i = 0 to Gat_cfg.Cfg.n_blocks cfg - 1 do
    let block = Gat_cfg.Cfg.block cfg i in
    let env = ref (block_entry t i) in
    List.iteri
      (fun idx (ins : Instruction.t) ->
        (if Opcode.is_memory ins.Instruction.op then
           match
             List.find_map
               (function Operand.Addr a -> Some a | _ -> None)
               ins.Instruction.srcs
           with
           | Some a ->
               sites :=
                 {
                   block_index = i;
                   block_label = block.Gat_isa.Basic_block.label;
                   instr_index = idx;
                   op = ins.Instruction.op;
                   space = a.Operand.space;
                   address = eval_operand !env (Operand.Addr a);
                 }
                 :: !sites
           | None -> ());
        env := transfer !env ins)
      block.Gat_isa.Basic_block.body
  done;
  List.rev !sites
