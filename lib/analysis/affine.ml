open Gat_isa

type coeff = Known of { k : int; e : int } | Unknown

(* Exponent clamps keep the abstract domain finite-height (loop bodies
   that keep multiplying by a uniform would otherwise ascend forever). *)
let e_min = -8
let e_max = 8
let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let known k e =
  if k = 0 then Known { k = 0; e = 0 } else Known { k; e = clamp e_min e_max e }

let zero_coeff = known 0 0

let cadd a b =
  match (a, b) with
  | Known { k = 0; _ }, c | c, Known { k = 0; _ } -> c
  | Known x, Known y when x.e = y.e -> known (x.k + y.k) x.e
  (* Mixed degrees: the higher-degree term dominates the stride as n
     grows; keeping it is what lets floor-free division algebra cancel
     when decomposed indices are re-flattened. *)
  | Known x, Known y -> if x.e > y.e then Known x else Known y
  | Unknown, _ | _, Unknown -> Unknown

let cscale s c =
  match c with
  | Known { k; e } -> known (s * k) e
  | Unknown -> if s = 0 then zero_coeff else Unknown

let cshift d c =
  match c with
  | Known { k = 0; _ } -> zero_coeff
  | Known { k; e } -> known k (e + d)
  | Unknown -> Unknown

let cjoin a b = if a = b then a else Unknown

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* A loop-carried constant delta widens into an iteration stride; gcd
   keeps successive widenings on a strictly descending (terminating)
   chain. *)
let widen_iter it d =
  if d = 0 then it
  else
    match it with
    | Known { k = 0; _ } -> known (abs d) 0
    | Known { k; e = 0 } -> known (gcd (abs k) (abs d)) 0
    | Known _ | Unknown -> Unknown

type value = { base : int option; mag : int; tid : coeff; iter : coeff }

let top = { base = None; mag = 1; tid = Unknown; iter = Unknown }
let const c = { base = Some c; mag = 0; tid = zero_coeff; iter = zero_coeff }

let uniform ~mag =
  { base = None; mag = clamp e_min e_max mag; tid = zero_coeff; iter = zero_coeff }

let is_uniform v = v.tid = zero_coeff && v.iter = zero_coeff
let is_const v = is_uniform v && v.base <> None

(* Magnitude exponent of a value's unknown part; known constants are
   O(1) regardless of their numeric size. *)
let umag v = if v.base = None then v.mag else 0

let add a b =
  let base =
    match (a.base, b.base) with Some x, Some y -> Some (x + y) | _ -> None
  in
  let mag =
    match (a.base, b.base) with
    | None, None -> max a.mag b.mag
    | None, Some _ -> a.mag
    | Some _, None -> b.mag
    | Some _, Some _ -> 0
  in
  { base; mag; tid = cadd a.tid b.tid; iter = cadd a.iter b.iter }

let scale k v =
  if k = 0 then const 0
  else
    {
      base = Option.map (fun c -> k * c) v.base;
      mag = v.mag;
      tid = cscale k v.tid;
      iter = cscale k v.iter;
    }

let mul a b =
  if is_const a then scale (Option.get a.base) b
  else if is_const b then scale (Option.get b.base) a
  else if is_uniform a then
    (* uniform × affine: every stride scales by the uniform's magnitude. *)
    {
      base = None;
      mag = clamp e_min e_max (a.mag + umag b);
      tid = cshift a.mag b.tid;
      iter = cshift a.mag b.iter;
    }
  else if is_uniform b then
    {
      base = None;
      mag = clamp e_min e_max (b.mag + umag a);
      tid = cshift b.mag a.tid;
      iter = cshift b.mag a.iter;
    }
  else
    {
      base = None;
      mag = clamp e_min e_max (umag a + umag b);
      tid = Unknown;
      iter = Unknown;
    }

let recip a =
  if is_uniform a then
    match a.base with
    | Some 1 -> const 1
    | Some (-1) -> const (-1)
    | Some _ -> uniform ~mag:0
    | None -> uniform ~mag:(-a.mag)
  else top

let join_value a b =
  if a = b then a
  else
    let tid = cjoin a.tid b.tid in
    let iter0 = cjoin a.iter b.iter in
    let base, mag, iter =
      match (a.base, b.base) with
      | Some x, Some y when x = y -> (Some x, 0, iter0)
      | Some x, Some y -> (None, 0, widen_iter iter0 (y - x))
      | None, None -> (None, max a.mag b.mag, iter0)
      | None, Some _ -> (None, a.mag, iter0)
      | Some _, None -> (None, b.mag, iter0)
    in
    { base; mag; tid; iter }

let coeff_to_string c =
  match c with
  | Known { k = 0; _ } -> "0"
  | Known { k; e = 0 } -> string_of_int k
  | Known { k; e } when e > 0 ->
      let base = if k = 1 then "n" else if k = -1 then "-n" else Printf.sprintf "%dn" k in
      if e = 1 then base else Printf.sprintf "%s^%d" base e
  | Known { k; e } ->
      if e = -1 then Printf.sprintf "%d/n" k else Printf.sprintf "%d/n^%d" k (-e)
  | Unknown -> "?"

type env = value Register.Map.t

let lookup env r =
  match Register.Map.find_opt r env with Some v -> v | None -> top

let eval_operand_with look operand =
  match operand with
  | Operand.Reg r -> look r
  | Operand.Imm i -> const i
  | Operand.FImm f -> const (int_of_float f)
  | Operand.Special (Operand.Tid_x | Operand.Laneid) ->
      { base = Some 0; mag = 0; tid = known 1 0; iter = zero_coeff }
  | Operand.Special (Operand.Ntid_x | Operand.Ctaid_x | Operand.Nctaid_x) ->
      uniform ~mag:1
  | Operand.Addr { base; offset; _ } -> add (look base) (const offset)

let eval_operand env operand = eval_operand_with (lookup env) operand

let eval_instruction_with look (ins : Instruction.t) =
  let src i =
    match List.nth_opt ins.Instruction.srcs i with
    | Some o -> eval_operand_with look o
    | None -> top
  in
  let generic () =
    (* Anything built purely from uniforms stays uniform (sqrt, setp,
       min/max, logic ops, ...); otherwise we know nothing. *)
    let vs = List.map (eval_operand_with look) ins.Instruction.srcs in
    if vs <> [] && List.for_all is_uniform vs then
      uniform ~mag:(List.fold_left (fun m v -> max m (umag v)) 0 vs)
    else top
  in
  match ins.Instruction.op with
  | Opcode.MOV -> src 0
  | Opcode.IADD | Opcode.FADD | Opcode.DADD -> add (src 0) (src 1)
  | Opcode.IMUL | Opcode.FMUL | Opcode.DMUL -> mul (src 0) (src 1)
  | Opcode.IMAD | Opcode.FFMA | Opcode.DFMA -> add (mul (src 0) (src 1)) (src 2)
  | Opcode.I2F | Opcode.F2I | Opcode.F2F | Opcode.I2D | Opcode.D2I
  | Opcode.F2D | Opcode.D2F ->
      src 0
  | Opcode.MUFU_RCP -> recip (src 0)
  | Opcode.SHL -> (
      match List.nth_opt ins.Instruction.srcs 1 with
      | Some (Operand.Imm k) when k >= 0 && k < 31 -> mul (src 0) (const (1 lsl k))
      | _ -> generic ())
  | Opcode.LDC -> uniform ~mag:1
  | Opcode.LDG | Opcode.LDS | Opcode.LDL | Opcode.TEX -> top
  | Opcode.SEL -> join_value (src 0) (src 1)
  | _ -> generic ()

let transfer env (ins : Instruction.t) =
  match ins.Instruction.dst with
  | None -> env
  | Some d ->
      let v = eval_instruction_with (lookup env) ins in
      let v =
        match ins.Instruction.pred with
        | None -> v
        | Some _ -> (
            (* A predicated write may not happen: keep the old value in
               the mix. *)
            match Register.Map.find_opt d env with
            | Some old -> join_value old v
            | None -> v)
      in
      Register.Map.add d v env

(* ---- fixpoint over a flat, register-slot-indexed environment ----

   The solver's hot loop joins, compares and transfers whole
   environments once per block visit; balanced-tree maps make every
   one of those O(bindings · log bindings) allocation-heavy.  The
   fixpoint instead runs on [value array]s indexed by register slot
   (only ever-written registers get slots; reads outside the universe
   are [top], exactly like a missing map binding).  The physically
   unique [absent] value marks never-bound slots so join can keep the
   one-sided-binding semantics of [Map.union].  Results convert back
   to maps only in {!block_entry} (cold path). *)

let absent = { base = None; mag = min_int; tid = Unknown; iter = Unknown }

let slot (r : Register.t) =
  (2 * r.Register.id)
  + match r.Register.cls with Register.Pred -> 1 | Register.Gpr -> 0

module Arr_lattice = struct
  type t = value array

  let bottom = [||]

  (* Slot-wise, physical-equality-first: unchanged slots keep their
     pointer across [Array.copy], so the structural fallback only runs
     for slots the visit actually rewrote. *)
  let equal a b =
    a == b
    || Array.length a = Array.length b
       && begin
            let n = Array.length a in
            let rec go i =
              i >= n
              || (let x = Array.unsafe_get a i and y = Array.unsafe_get b i in
                  x == y || x = y)
                 && go (i + 1)
            in
            go 0
          end

  let join a b =
    if a == b || Array.length b = 0 then a
    else if Array.length a = 0 then b
    else begin
      let n = Array.length a in
      let r = Array.make n absent in
      for i = 0 to n - 1 do
        let x = a.(i) and y = b.(i) in
        r.(i) <-
          (if x == absent then y
           else if y == absent then x
           else join_value x y)
      done;
      r
    end
end

module Solver = Gat_cfg.Dataflow.Make (Arr_lattice)

type t = {
  n_slots : int;
  slot_regs : Register.t option array;  (* slot -> register, for maps *)
  before : value array array;  (* entry env per block; [||] = bottom *)
}

let lookup_arr env (r : Register.t) =
  let s = slot r in
  if s >= Array.length env then top
  else
    let v = Array.unsafe_get env s in
    if v == absent then top else v

(* In-place version of {!transfer} on an array env the caller owns;
   [look] must be [lookup_arr env], passed in so walks allocate the
   closure once per block rather than once per instruction. *)
let transfer_arr look env (ins : Instruction.t) =
  match ins.Instruction.dst with
  | None -> ()
  | Some d ->
      let v = eval_instruction_with look ins in
      let v =
        match ins.Instruction.pred with
        | None -> v
        | Some _ ->
            let old = env.(slot d) in
            if old == absent then v else join_value old v
      in
      env.(slot d) <- v

let universe cfg =
  let max_slot = ref (-1) in
  let note (ins : Instruction.t) =
    match ins.Instruction.dst with
    | Some d -> max_slot := max !max_slot (slot d)
    | None -> ()
  in
  Array.iter
    (fun (b : Gat_isa.Basic_block.t) ->
      List.iter note b.Gat_isa.Basic_block.body;
      note (Gat_isa.Basic_block.terminator_instruction b))
    cfg.Gat_cfg.Cfg.blocks;
  let n_slots = !max_slot + 1 in
  let slot_regs = Array.make n_slots None in
  Array.iter
    (fun (b : Gat_isa.Basic_block.t) ->
      let note (ins : Instruction.t) =
        match ins.Instruction.dst with
        | Some d -> slot_regs.(slot d) <- Some d
        | None -> ()
      in
      List.iter note b.Gat_isa.Basic_block.body;
      note (Gat_isa.Basic_block.terminator_instruction b))
    cfg.Gat_cfg.Cfg.blocks;
  (n_slots, slot_regs)

let entry_env n_slots input =
  if Array.length input = 0 then Array.make n_slots absent
  else Array.copy input

let analyze cfg =
  let n_slots, slot_regs = universe cfg in
  let result =
    Solver.solve cfg ~transfer:(fun _ block input ->
        let env = entry_env n_slots input in
        let look = lookup_arr env in
        List.iter (transfer_arr look env) block.Gat_isa.Basic_block.body;
        transfer_arr look env
          (Gat_isa.Basic_block.terminator_instruction block);
        env)
  in
  { n_slots; slot_regs; before = result.Solver.before }

let block_entry (t : t) i =
  let env = t.before.(i) in
  let m = ref Register.Map.empty in
  Array.iteri
    (fun s v ->
      if v != absent then
        match t.slot_regs.(s) with
        | Some r -> m := Register.Map.add r v !m
        | None -> ())
    env;
  !m

type access_site = {
  block_index : int;
  block_label : string;
  instr_index : int;
  op : Gat_isa.Opcode.t;
  space : Gat_isa.Operand.space;
  address : value;
}

let memory_sites cfg (t : t) =
  let sites = ref [] in
  for i = 0 to Gat_cfg.Cfg.n_blocks cfg - 1 do
    let block = Gat_cfg.Cfg.block cfg i in
    let env = entry_env t.n_slots t.before.(i) in
    let look = lookup_arr env in
    List.iteri
      (fun idx (ins : Instruction.t) ->
        (if Opcode.is_memory ins.Instruction.op then
           match
             List.find_map
               (function Operand.Addr a -> Some a | _ -> None)
               ins.Instruction.srcs
           with
           | Some a ->
               sites :=
                 {
                   block_index = i;
                   block_label = block.Gat_isa.Basic_block.label;
                   instr_index = idx;
                   op = ins.Instruction.op;
                   space = a.Operand.space;
                   address = eval_operand_with look (Operand.Addr a);
                 }
                 :: !sites
           | None -> ());
        transfer_arr look env ins)
      block.Gat_isa.Basic_block.body
  done;
  List.rev !sites
