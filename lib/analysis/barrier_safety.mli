(** Barrier-divergence checking.

    Executing [BAR] (__syncthreads) under thread-dependent control
    flow is undefined behavior on real GPUs: lanes that took the other
    side of a divergent branch never arrive and the barrier deadlocks
    or releases early.  The check is a forward dataflow over the CFG
    whose facts are the {e open divergent branches}: a divergent
    conditional branch (from {!Gat_cfg.Divergence}) opens at its block
    and stays open along every path until a block that post-dominates
    it — its reconvergence point — closes it.  A [BAR] in a block with
    a non-empty open set is flagged.

    Uniform branches (loop trip counts derived from [N], block-uniform
    conditions) never open, so barriers inside sequential loops or
    straight-line staging prologues pass.  A barrier inside the
    grid-stride parallel loop always fails: its latch compares a
    tid-derived induction variable. *)

type finding = {
  block_index : int;
  block_label : string;
  instr_index : int;  (** Position of the [BAR] within the block body. *)
  branch_indices : int list;
      (** Node indices of the divergent branches still open, sorted. *)
  branch_labels : string list;  (** Their block labels, same order. *)
}

val check : Gat_cfg.Cfg.t -> finding list
(** All divergent barriers, in block/program order.  Empty list =
    every barrier (if any) executes under uniform control flow. *)

val finding_to_string : finding -> string
(** One stable line naming the barrier site and the open branches. *)
