open Gat_arch
open Gat_isa
module Driver = Gat_compiler.Driver
module Profile = Gat_compiler.Profile
module Params = Gat_compiler.Params
module Block_table = Gat_compiler.Block_table

type result = {
  cycles : float;
  time_ms : float;
  occupancy : float;
  active_blocks : int;
  waves : int;
  issue_cycles : float;
  mem_cycles : float;
  latency_cycles : float;
  bound : [ `Issue | `Bandwidth | `Latency ];
  dynamic_mix : Gat_core.Imix.t;
  transactions : float;
  lane_utilization : float;
}

(* Resident blocks per SM, honouring the L1-preference shared-memory
   carveout where it exists; if the carveout would make the kernel
   unlaunchable the hardware ignores the preference (it is a hint). *)
let residency (c : Driver.compiled) =
  let gpu = c.Driver.gpu in
  let params = c.Driver.params in
  let occ_input =
    Gat_core.Occupancy.input
      ~regs_per_thread:c.Driver.log.Gat_compiler.Ptxas_info.registers
      ~smem_per_block:(Program.smem_per_block c.Driver.program)
      ~threads_per_block:params.Params.threads_per_block ()
  in
  let constrained =
    match
      Memory_model.smem_per_mp_effective gpu
        ~l1_pref_kb:params.Params.l1_pref_kb
    with
    | Some smem_per_mp ->
        Gat_core.Occupancy.calculate_with ~smem_per_mp gpu occ_input
    | None -> Gat_core.Occupancy.calculate gpu occ_input
  in
  if constrained.Gat_core.Occupancy.active_blocks > 0 then constrained
  else Gat_core.Occupancy.calculate gpu occ_input

(* Warp-instruction issue cost: 32 thread-ops through a pipeline of
   [ipc] ops/cycle. *)
let warp_issue_cycles gpu op =
  32.0 /. Throughput.ipc gpu.Gpu.cc (Opcode.category op)

let categories = Array.of_list Throughput.all_categories

let single_instruction_mix ins =
  let per_category = Array.make (Array.length categories) 0.0 in
  Array.iteri
    (fun i c -> if c = Opcode.category ins.Instruction.op then per_category.(i) <- 1.0)
    categories;
  {
    Gat_core.Imix.per_category;
    reg_operands = float_of_int (Instruction.register_operands ins);
  }

(* The SM-distribution tail of the model, shared by the flattened and
   reference paths: everything after the per-block aggregation is a
   closed-form function of the accumulated totals. *)
let finish (c : Driver.compiled) ~n ~(occ : Gat_core.Occupancy.result)
    ~issue_cycles ~load_issues ~transactions ~barrier_issues ~weighted_lanes
    ~total_issues ~mix ~lat_weighted =
  let gpu = c.Driver.gpu in
  let params = c.Driver.params in
  let profile = c.Driver.profile in
  (* Distribute over SMs.  Grid-stride work lives in the first
     [ceil(work / TC)] blocks; when the launch has more threads than
     work items, only those blocks' SMs are busy and the rest retire
     almost immediately — concentrating all traffic on a few SMs.  The
     busiest SM sets the kernel's duration. *)
  let n_sm = gpu.Gpu.multiprocessors in
  let bc = params.Params.block_count in
  let tc = params.Params.threads_per_block in
  let work = profile.Profile.work_items n in
  let working_blocks = max 1 (min bc ((work + tc - 1) / tc)) in
  let busy_sms = min n_sm working_blocks in
  let blocks_busy_sm = (working_blocks + busy_sms - 1) / busy_sms in
  let sm_share = float_of_int blocks_busy_sm /. float_of_int working_blocks in
  let active_blocks = max 1 occ.Gat_core.Occupancy.active_blocks in
  let waves = (blocks_busy_sm + active_blocks - 1) / active_blocks in
  let resident_warps_avg =
    Float.min
      (float_of_int occ.Gat_core.Occupancy.active_warps)
      (float_of_int (blocks_busy_sm * occ.Gat_core.Occupancy.warps_per_block)
      /. float_of_int (max 1 waves))
  in
  let issue_sm = issue_cycles *. sm_share in
  (* Barrier synchronization: each barrier stalls proportionally to the
     warps it gathers. *)
  let barrier_sm =
    barrier_issues *. sm_share *. 2.0
    *. float_of_int occ.Gat_core.Occupancy.warps_per_block
  in
  (* Only warps that have work can hide each other's latency or keep
     memory requests in flight; idle warps retire immediately.  Grid-
     stride assigns work to the first ceil(min(work,T)/32) warps. *)
  let total_threads = tc * bc in
  let working_warps =
    Float.max 1.0 (Float.of_int (min work total_threads) /. 32.0)
  in
  let warps_busy_sm =
    Float.min resident_warps_avg (working_warps /. float_of_int busy_sms)
  in
  let avg_load_latency =
    if load_issues > 0.0 then lat_weighted /. load_issues else 1.0
  in
  (* Little's law: achievable per-SM bandwidth is bounded by in-flight
     requests (warps x memory-level parallelism) over latency. *)
  let mlp = 4.0 in
  let achievable_bw =
    Float.min
      (Memory_model.bytes_per_cycle_per_sm gpu)
      (Float.max 0.25 (warps_busy_sm *. mlp *. 128.0 /. avg_load_latency))
  in
  let mem_sm = transactions *. sm_share *. 128.0 /. achievable_bw in
  let latency_sm = lat_weighted *. sm_share /. Float.max 1.0 warps_busy_sm in
  let launch_overhead = 600.0 +. (300.0 *. float_of_int waves) in
  let issue_total = issue_sm +. barrier_sm in
  let cycles =
    launch_overhead +. Float.max issue_total (Float.max mem_sm latency_sm)
  in
  let bound =
    if issue_total >= mem_sm && issue_total >= latency_sm then `Issue
    else if mem_sm >= latency_sm then `Bandwidth
    else `Latency
  in
  let time_ms = cycles /. (float_of_int gpu.Gpu.gpu_clock_mhz *. 1000.0) in
  {
    cycles;
    time_ms;
    occupancy = occ.Gat_core.Occupancy.occupancy;
    active_blocks;
    waves;
    issue_cycles;
    mem_cycles = mem_sm;
    latency_cycles = latency_sm;
    bound;
    dynamic_mix = mix;
    transactions;
    lane_utilization =
      (if total_issues > 0.0 then weighted_lanes /. total_issues else 1.0);
  }

(* The flattened hot path: one pass over the precomputed block table.
   Accumulation replays the reference fold's exact floating-point
   operation sequence per accumulator (see Block_table), so the result
   is bit-identical to [run_reference] while doing no list traversal
   and no per-instruction allocation. *)
let run_impl (c : Driver.compiled) ~n =
  let tbl = c.Driver.block_table in
  let profile = c.Driver.profile in
  let occ = tbl.Block_table.residency in
  let nb = tbl.Block_table.n_blocks in
  let ncat = tbl.Block_table.n_categories in
  (* Align the profile's per-size aggregates with block layout order. *)
  let execs = Array.make nb 0.0 in
  let lanes = Array.make nb 1.0 in
  let seen = Array.make nb false in
  (* First binding wins, matching [Profile.find_counts]'s assoc lookup;
     absent labels keep the zero aggregate (execs 0, full lanes). *)
  List.iter
    (fun (label, (agg : Profile.agg)) ->
      match Hashtbl.find_opt tbl.Block_table.index label with
      | Some i when not seen.(i) ->
          seen.(i) <- true;
          execs.(i) <- agg.Profile.execs;
          lanes.(i) <- agg.Profile.lanes
      | _ -> ())
    (profile.Profile.block_counts n);
  let issue_cycles = ref 0.0 in
  let load_issues = ref 0.0 in
  let transactions = ref 0.0 in
  let barrier_issues = ref 0.0 in
  let weighted_lanes = ref 0.0 in
  let total_issues = ref 0.0 in
  let lat_weighted = ref 0.0 in
  let per_category = Array.make ncat 0.0 in
  let reg_operands = ref 0.0 in
  for i = 0 to nb - 1 do
    let e = Array.unsafe_get execs i in
    if e > 0.0 then begin
      issue_cycles :=
        !issue_cycles +. (e *. Array.unsafe_get tbl.Block_table.issue_cycles i);
      load_issues :=
        !load_issues +. (e *. Array.unsafe_get tbl.Block_table.global_loads i);
      barrier_issues :=
        !barrier_issues +. (e *. Array.unsafe_get tbl.Block_table.barriers i);
      let trans = Array.unsafe_get tbl.Block_table.mem_transactions i in
      for a = 0 to Array.length trans - 1 do
        transactions := !transactions +. (e *. Array.unsafe_get trans a)
      done;
      let lats = Array.unsafe_get tbl.Block_table.mem_load_latency i in
      for a = 0 to Array.length lats - 1 do
        lat_weighted := !lat_weighted +. (e *. Array.unsafe_get lats a)
      done;
      let instr_count = Array.unsafe_get tbl.Block_table.instr_counts i in
      total_issues := !total_issues +. (e *. instr_count);
      weighted_lanes :=
        !weighted_lanes +. (e *. instr_count *. Array.unsafe_get lanes i);
      (* Per-category counts: the reference adds [e] once per matching
         instruction, so a category seen [k] times contributes the
         [k]-fold repeated sum of [e] (not [k *. e], which may round
         differently for fractional [e]). *)
      let mc = Array.unsafe_get tbl.Block_table.mix_counts i in
      for cat = 0 to ncat - 1 do
        let k = Array.unsafe_get mc cat in
        if k > 0 then begin
          let s = ref e in
          for _ = 2 to k do
            s := !s +. e
          done;
          Array.unsafe_set per_category cat
            (Array.unsafe_get per_category cat +. !s)
        end
      done;
      let regs = Array.unsafe_get tbl.Block_table.reg_ops i in
      let racc = ref 0.0 in
      for j = 0 to Array.length regs - 1 do
        racc := !racc +. (e *. Array.unsafe_get regs j)
      done;
      reg_operands := !reg_operands +. !racc
    end
  done;
  finish c ~n ~occ ~issue_cycles:!issue_cycles ~load_issues:!load_issues
    ~transactions:!transactions ~barrier_issues:!barrier_issues
    ~weighted_lanes:!weighted_lanes ~total_issues:!total_issues
    ~mix:{ Gat_core.Imix.per_category; reg_operands = !reg_operands }
    ~lat_weighted:!lat_weighted

let m_runs = Gat_util.Metrics.counter "sim.runs"

(* Counting and (when enabled) tracing live in a wrapper so the hot
   path above stays branch-free; the disabled-trace cost is one atomic
   increment and one [Atomic.get]. *)
let run (c : Driver.compiled) ~n =
  Gat_util.Metrics.incr m_runs;
  if not (Gat_util.Trace.on ()) then run_impl c ~n
  else
    Gat_util.Trace.span "simulate"
      ~args:
        [
          ("kernel", Gat_util.Trace.S c.Driver.kernel.Gat_ir.Kernel.name);
          ("gpu", Gat_util.Trace.S c.Driver.gpu.Gat_arch.Gpu.name);
          ("params", Gat_util.Trace.S (Params.to_string c.Driver.params));
          ("n", Gat_util.Trace.I n);
        ]
      (fun () -> run_impl c ~n)

(* The original list-based path, kept verbatim as the executable
   specification: the equivalence suite asserts [run] returns
   bit-identical results across every bundled kernel, device and input
   size. *)
let run_reference (c : Driver.compiled) ~n =
  let gpu = c.Driver.gpu in
  let params = c.Driver.params in
  let profile = c.Driver.profile in
  let occ = residency c in
  let program = c.Driver.program in
  (* Per-block static properties. *)
  let blocks = program.Program.blocks in
  let issue_cost_of_block b =
    List.fold_left
      (fun acc ins -> acc +. warp_issue_cycles gpu ins.Instruction.op)
      (warp_issue_cycles gpu
         (Basic_block.terminator_instruction b).Instruction.op)
      b.Basic_block.body
  in
  let global_loads_of_block b =
    List.fold_left
      (fun acc ins ->
        if Opcode.is_global_memory ins.Instruction.op && Opcode.is_load ins.Instruction.op
        then acc + 1
        else acc)
      0 b.Basic_block.body
  in
  let barrier_count_of_block b =
    List.fold_left
      (fun acc ins -> if Opcode.is_barrier ins.Instruction.op then acc + 1 else acc)
      0 b.Basic_block.body
  in
  (* Aggregate over blocks using the exact profile counts. *)
  let issue_cycles = ref 0.0 in
  let load_issues = ref 0.0 in
  let transactions = ref 0.0 in
  let barrier_issues = ref 0.0 in
  let weighted_lanes = ref 0.0 in
  let total_issues = ref 0.0 in
  let mix = ref Gat_core.Imix.zero in
  let lat_weighted = ref 0.0 in
  List.iter
    (fun b ->
      let label = b.Basic_block.label in
      let agg = Profile.find_counts profile ~n label in
      let e = agg.Profile.execs in
      if e > 0.0 then begin
        issue_cycles := !issue_cycles +. (e *. issue_cost_of_block b);
        load_issues :=
          !load_issues +. (e *. float_of_int (global_loads_of_block b));
        barrier_issues :=
          !barrier_issues +. (e *. float_of_int (barrier_count_of_block b));
        let accesses =
          Option.value ~default:[]
            (List.assoc_opt label c.Driver.mem_summary)
        in
        List.iter
          (fun (a : Gat_analysis.Coalescing.access) ->
            transactions :=
              !transactions
              +. (e *. Memory_model.access_transactions a);
            if a.Gat_analysis.Coalescing.kind = `Load then
              lat_weighted :=
                !lat_weighted
                +. e
                   *. Memory_model.access_latency gpu
                        ~l1_pref_kb:params.Params.l1_pref_kb
                        ~staging:params.Params.staging a)
          accesses;
        (* Dynamic instruction counts: warp-level issues per category. *)
        let instr_count = float_of_int (Basic_block.instruction_count b) in
        total_issues := !total_issues +. (e *. instr_count);
        weighted_lanes :=
          !weighted_lanes +. (e *. instr_count *. agg.Profile.lanes);
        let block_mix =
          List.fold_left
            (fun acc ins ->
              Gat_core.Imix.add acc
                (Gat_core.Imix.scale e (single_instruction_mix ins)))
            Gat_core.Imix.zero
            (b.Basic_block.body
            @ [ Basic_block.terminator_instruction b ])
        in
        mix := Gat_core.Imix.add !mix block_mix
      end)
    blocks;
  finish c ~n ~occ ~issue_cycles:!issue_cycles ~load_issues:!load_issues
    ~transactions:!transactions ~barrier_issues:!barrier_issues
    ~weighted_lanes:!weighted_lanes ~total_issues:!total_issues ~mix:!mix
    ~lat_weighted:!lat_weighted

let measured_time_ms c ~n ~rng =
  let base = (run c ~n).time_ms in
  base *. Gat_util.Rng.lognormal rng ~mu:0.0 ~sigma:0.02
