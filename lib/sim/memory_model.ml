(* The memory model proper lives in [Gat_analysis.Memory_model] so the
   compiler's block-table construction can pre-resolve per-access
   latency factors at compile time; this alias keeps the simulator's
   historical entry point. *)
include Gat_analysis.Memory_model
