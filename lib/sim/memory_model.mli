(** Re-export of {!Gat_analysis.Memory_model}, the memory-system model
    of the simulator substrate.  The implementation moved below the
    compiler layer so {!Gat_compiler.Block_table} can bake per-access
    transaction and latency factors into each compiled variant; the
    simulator-facing name is preserved here. *)

include module type of Gat_analysis.Memory_model
