(** The GPU performance simulator — the testbed stand-in.

    Given a compiled variant and a problem size, computes the kernel's
    execution time on the target device from the variant's execution
    profile (exact warp-level block issue counts) and an SM-level
    analytic model with three bounds:

    - issue throughput: every warp instruction costs [32 / IPC] cycles
      of its pipeline (Table II);
    - memory bandwidth: global transactions times 128 bytes against the
      device's per-SM bandwidth share;
    - latency: each warp's global loads serialize at their effective
      latency, hidden by the other resident warps — this is where
      occupancy (itself limited by registers/shared memory/block size,
      including the L1-preference shared-memory carveout on
      Fermi/Kepler) matters.

    Divergent branches cost extra issues because warps execute both
    sides (already present in the profile counts); barriers cost
    proportionally to the warps they synchronize.

    The model deliberately knows more than the paper's static analyzer
    (achieved occupancy, coalescing, cache behaviour, wave
    quantization): static-vs-dynamic prediction error in the
    reproduced experiments comes from this gap. *)

type result = {
  cycles : float;  (** Kernel duration in core-clock cycles. *)
  time_ms : float;  (** Duration in milliseconds. *)
  occupancy : float;  (** Achieved occupancy used for latency hiding. *)
  active_blocks : int;  (** Resident blocks per SM. *)
  waves : int;  (** Block waves per SM. *)
  issue_cycles : float;  (** Total issue-bound cycles (all SMs). *)
  mem_cycles : float;  (** Bandwidth-bound cycles (per busiest SM). *)
  latency_cycles : float;  (** Latency-bound cycles (per busiest SM). *)
  bound : [ `Issue | `Bandwidth | `Latency ];  (** Binding constraint. *)
  dynamic_mix : Gat_core.Imix.t;
      (** Dynamic instruction counts (warp-level issues per Table II
          category, register operands included). *)
  transactions : float;  (** Total 128-byte global transactions. *)
  lane_utilization : float;
      (** Issue-weighted average active-lane fraction (1 - divergence
          loss). *)
}

val run : Gat_compiler.Driver.compiled -> n:int -> result
(** Simulate one launch.  Deterministic: no noise — measurement noise
    belongs to the tuner's trial protocol.

    Reads the variant's precomputed {!Gat_compiler.Block_table} — flat
    array loops, no list traversal or per-instruction allocation — and
    is bit-identical to {!run_reference}. *)

val run_reference : Gat_compiler.Driver.compiled -> n:int -> result
(** The original list-based simulation path, retained verbatim as the
    executable specification of {!run}: it recomputes every per-block
    static property from the program on each call.  The equivalence
    suite in [test_sim] asserts both paths agree bitwise on every
    bundled kernel, device and input size.  Slow — not for use outside
    tests. *)

val measured_time_ms :
  Gat_compiler.Driver.compiled -> n:int -> rng:Gat_util.Rng.t -> float
(** One noisy "wall-clock" trial: the deterministic time scaled by a
    small lognormal measurement error, as a real timer would report. *)
