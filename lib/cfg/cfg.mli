(** Control-flow graph over a virtual-ISA program.

    Nodes are basic blocks identified by their index in the program's
    layout order; the entry block has index 0. *)

type t = {
  program : Gat_isa.Program.t;
  blocks : Gat_isa.Basic_block.t array;
      (** Basic blocks by node index (layout order). *)
  labels : string array;  (** Block labels by node index. *)
  succ : int list array;  (** Successor indices. *)
  pred : int list array;  (** Predecessor indices. *)
}

val of_program : Gat_isa.Program.t -> t

val n_blocks : t -> int
val entry : t -> int
(** Always 0. *)

val index_of : t -> string -> int
(** Node index of a label; raises [Not_found]. *)

val block : t -> int -> Gat_isa.Basic_block.t
(** The basic block at a node index. *)

val reachable : t -> bool array
(** Nodes reachable from the entry. *)

val reverse_postorder : t -> int array
(** Reverse postorder of the reachable subgraph, entry first. *)

val edge_count : t -> int
(** Total number of CFG edges. *)
