let render ?(highlight_divergence = true) cfg =
  let divergent =
    if highlight_divergence then Divergence.divergent_branches (Divergence.compute cfg)
    else []
  in
  let loop_info = Loops.compute cfg in
  let headers = List.map (fun (l : Loops.loop) -> l.Loops.header) (Loops.loops loop_info) in
  let reachable = Cfg.reachable cfg in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph cfg {\n";
  Buffer.add_string buf "  node [shape=box, fontname=\"monospace\"];\n";
  Array.iteri
    (fun i label ->
      let attrs = ref [] in
      if not reachable.(i) then
        attrs := "style=filled" :: "fillcolor=\"#d9d9d9\"" :: "color=gray" :: !attrs
      else if List.mem i divergent then
        attrs := "style=filled" :: "fillcolor=\"#f4cccc\"" :: !attrs;
      if List.mem i headers then attrs := "peripheries=2" :: !attrs;
      let n_instrs =
        Gat_isa.Basic_block.instruction_count (Cfg.block cfg i)
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s [label=\"%s\\n%d instrs%s\"%s];\n" label label
           n_instrs
           (if reachable.(i) then "" else "\\n(unreachable)")
           (if !attrs = [] then ""
            else ", " ^ String.concat ", " !attrs))
    )
    cfg.Cfg.labels;
  Array.iteri
    (fun i succs ->
      (* A divergent conditional branch gets annotated taken/fall-through
         edges so the rendering shows where warps can split. *)
      let edge_attrs =
        if List.mem i divergent then
          let branch_labels =
            match (Cfg.block cfg i).Gat_isa.Basic_block.term with
            | Gat_isa.Basic_block.Cond_branch _ -> [ "t"; "f" ]
            | Gat_isa.Basic_block.Jump _ | Gat_isa.Basic_block.Exit -> []
          in
          fun k ->
            let lbl =
              match List.nth_opt branch_labels k with
              | Some l -> Printf.sprintf ", label=\"%s\"" l
              | None -> ""
            in
            Printf.sprintf " [color=\"#cc0000\", style=bold%s]" lbl
        else fun _ -> ""
      in
      List.iteri
        (fun k j ->
          Buffer.add_string buf
            (Printf.sprintf "  %s -> %s%s;\n" cfg.Cfg.labels.(i)
               cfg.Cfg.labels.(j) (edge_attrs k)))
        succs)
    cfg.Cfg.succ;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
