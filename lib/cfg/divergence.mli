(** Thread-dependence and branch-divergence analysis.

    A value is thread-dependent if it derives from [%tid.x] or
    [%laneid] — the registers that differ between lanes of a warp.  A
    conditional branch guarded by a thread-dependent predicate can make
    lanes of one warp take different paths, serializing execution (the
    paper's Fig. 1 problem).  The analysis is a forward may-taint
    problem on the generic {!Dataflow} worklist solver: per-block taint
    sets joined by union, with no kill (a register that may be
    lane-varying on some path stays suspect).  Blocks unreachable from
    the entry contribute nothing. *)

type t

val compute : Cfg.t -> t

val thread_dependent_registers : t -> Gat_isa.Register.Set.t
(** Registers (GPR and predicate) that may hold lane-varying values. *)

val divergent_branches : t -> int list
(** Node indices whose terminator is a conditional branch on a
    thread-dependent predicate, in program order. *)

val branch_count : t -> int
(** Total conditional branches in the program. *)

val divergent_fraction : t -> float
(** [divergent branches / conditional branches]; 0 when branch-free. *)
