module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type result = { before : L.t array; after : L.t array }

  let solve ?(direction = Forward) ?(init = L.bottom) cfg ~transfer =
    let n = Cfg.n_blocks cfg in
    let before = Array.make n L.bottom in
    let after = Array.make n L.bottom in
    let rpo = Cfg.reverse_postorder cfg in
    (* Process nodes in an order that follows the flow direction so most
       facts are available on the first sweep; the worklist then only
       re-queues nodes whose inputs actually changed (back edges). *)
    let order =
      match direction with
      | Forward -> rpo
      | Backward ->
          let m = Array.length rpo in
          Array.init m (fun i -> rpo.(m - 1 - i))
    in
    let queue = Queue.create () in
    let queued = Array.make n false in
    let enqueue i =
      if not queued.(i) then begin
        queued.(i) <- true;
        Queue.add i queue
      end
    in
    Array.iter enqueue order;
    let flow_sources, flow_dests, is_boundary =
      match direction with
      | Forward ->
          (cfg.Cfg.pred, cfg.Cfg.succ, fun i -> i = Cfg.entry cfg)
      | Backward ->
          ( cfg.Cfg.succ,
            cfg.Cfg.pred,
            fun i ->
              match (Cfg.block cfg i).Gat_isa.Basic_block.term with
              | Gat_isa.Basic_block.Exit -> true
              | Gat_isa.Basic_block.Jump _
              | Gat_isa.Basic_block.Cond_branch _ ->
                  false )
    in
    let incoming, outgoing =
      match direction with
      | Forward -> (before, after)
      | Backward -> (after, before)
    in
    while not (Queue.is_empty queue) do
      let i = Queue.pop queue in
      queued.(i) <- false;
      let input =
        List.fold_left
          (fun acc p -> L.join acc outgoing.(p))
          (if is_boundary i then init else L.bottom)
          flow_sources.(i)
      in
      incoming.(i) <- input;
      let output = transfer i (Cfg.block cfg i) input in
      if not (L.equal output outgoing.(i)) then begin
        outgoing.(i) <- output;
        List.iter enqueue flow_dests.(i)
      end
    done;
    { before; after }
end

let block_instructions (b : Gat_isa.Basic_block.t) =
  b.Gat_isa.Basic_block.body @ [ Gat_isa.Basic_block.terminator_instruction b ]
