open Gat_isa

type t = {
  tainted : Register.Set.t;
  divergent : int list;
  branches : int;
}

let special_is_lane_varying = function
  | Operand.Tid_x | Operand.Laneid -> true
  | Operand.Ntid_x | Operand.Ctaid_x | Operand.Nctaid_x -> false

let instruction_taints tainted (ins : Instruction.t) =
  let src_tainted =
    List.exists
      (fun operand ->
        match operand with
        | Operand.Special s -> special_is_lane_varying s
        | Operand.Reg r -> Register.Set.mem r tainted
        | Operand.Addr { base; _ } -> Register.Set.mem base tainted
        | Operand.Imm _ | Operand.FImm _ -> false)
      ins.Instruction.srcs
    ||
    match ins.Instruction.pred with
    | Some { reg; _ } -> Register.Set.mem reg tainted
    | None -> false
  in
  (* Loads from lane-varying addresses produce lane-varying data.  Taint
     is never killed: a register that may hold a lane-varying value on
     some path stays suspect (may-analysis). *)
  if src_tainted then
    match ins.Instruction.dst with
    | Some d -> Register.Set.add d tainted
    | None -> tainted
  else tainted

module Taint = Dataflow.Make (struct
  type t = Register.Set.t

  let bottom = Register.Set.empty
  let equal = Register.Set.equal
  let join = Register.Set.union
end)

let compute cfg =
  let solution =
    Taint.solve cfg ~transfer:(fun _ block facts ->
        List.fold_left instruction_taints facts
          (Dataflow.block_instructions block))
  in
  let tainted =
    Array.fold_left Register.Set.union Register.Set.empty
      solution.Taint.after
  in
  let divergent = ref [] and branches = ref 0 in
  List.iteri
    (fun i (b : Basic_block.t) ->
      match b.Basic_block.term with
      | Basic_block.Cond_branch { pred = { reg; _ }; _ } ->
          incr branches;
          if Register.Set.mem reg solution.Taint.after.(i) then
            divergent := i :: !divergent
      | Basic_block.Jump _ | Basic_block.Exit -> ())
    cfg.Cfg.program.Program.blocks;
  { tainted; divergent = List.rev !divergent; branches = !branches }

let thread_dependent_registers t = t.tainted
let divergent_branches t = t.divergent
let branch_count t = t.branches

let divergent_fraction t =
  if t.branches = 0 then 0.0
  else float_of_int (List.length t.divergent) /. float_of_int t.branches
