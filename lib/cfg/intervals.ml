open Gat_isa

module Int_set = Set.Make (Int)

type barrier = {
  id : int;
  block_index : int;
  block_label : string;
  instr_index : int;
}

type t = {
  barrier_list : barrier list;
  entry_phases : Int_set.t array;  (** Reaching phases at block entry. *)
  body_phases : Int_set.t array array;
      (** Per block, the reaching set just before each body
          instruction. *)
}

(* Number the barriers in block/program order so phase ids are stable
   across runs and reports. *)
let find_barriers (cfg : Cfg.t) =
  let next = ref 0 in
  let barriers = ref [] in
  Array.iteri
    (fun bi (b : Basic_block.t) ->
      List.iteri
        (fun ii (ins : Instruction.t) ->
          if Opcode.is_barrier ins.Instruction.op then begin
            incr next;
            barriers :=
              {
                id = !next;
                block_index = bi;
                block_label = b.Basic_block.label;
                instr_index = ii;
              }
              :: !barriers
          end)
        b.Basic_block.body)
    cfg.Cfg.blocks;
  List.rev !barriers

module Phase_lattice = struct
  type t = Int_set.t

  let bottom = Int_set.empty
  let equal = Int_set.equal
  let join = Int_set.union
end

module Solver = Dataflow.Make (Phase_lattice)

let compute (cfg : Cfg.t) =
  let barrier_list = find_barriers cfg in
  (* barrier id by (block, instr) for the transfer function. *)
  let ids : (int * int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun b -> Hashtbl.replace ids (b.block_index, b.instr_index) b.id)
    barrier_list;
  let transfer bi (block : Basic_block.t) incoming =
    let s = ref incoming in
    List.iteri
      (fun ii (ins : Instruction.t) ->
        if Opcode.is_barrier ins.Instruction.op then
          s := Int_set.singleton (Hashtbl.find ids (bi, ii)))
      block.Basic_block.body;
    !s
  in
  let result =
    Solver.solve ~init:(Int_set.singleton 0) cfg ~transfer:(fun i b v ->
        transfer i b v)
  in
  let entry_phases = result.Solver.before in
  let body_phases =
    Array.mapi
      (fun bi (block : Basic_block.t) ->
        let s = ref entry_phases.(bi) in
        let per_instr =
          List.mapi
            (fun ii (ins : Instruction.t) ->
              let here = !s in
              if Opcode.is_barrier ins.Instruction.op then
                s := Int_set.singleton (Hashtbl.find ids (bi, ii));
              here)
            block.Basic_block.body
        in
        Array.of_list per_instr)
      cfg.Cfg.blocks
  in
  { barrier_list; entry_phases; body_phases }

let barrier_count t = List.length t.barrier_list
let barriers t = t.barrier_list
let block_entry_phases t i = Int_set.elements t.entry_phases.(i)

let instr_phase_set t ~block ~instr =
  let per_block = t.body_phases.(block) in
  if instr < 0 || instr >= Array.length per_block then
    invalid_arg "Intervals.instr_phases: instruction index out of range";
  per_block.(instr)

let instr_phases t ~block ~instr =
  Int_set.elements (instr_phase_set t ~block ~instr)

let may_share_phase t (b1, i1) (b2, i2) =
  not
    (Int_set.disjoint
       (instr_phase_set t ~block:b1 ~instr:i1)
       (instr_phase_set t ~block:b2 ~instr:i2))
