type t = {
  program : Gat_isa.Program.t;
  blocks : Gat_isa.Basic_block.t array;
  labels : string array;
  succ : int list array;
  pred : int list array;
}

let of_program (program : Gat_isa.Program.t) =
  let blocks = Array.of_list program.Gat_isa.Program.blocks in
  let n = Array.length blocks in
  let labels = Array.map (fun b -> b.Gat_isa.Basic_block.label) blocks in
  let index = Hashtbl.create n in
  Array.iteri (fun i l -> Hashtbl.replace index l i) labels;
  let succ = Array.make n [] in
  let pred = Array.make n [] in
  Array.iteri
    (fun i b ->
      let targets =
        List.map (Hashtbl.find index) (Gat_isa.Basic_block.successors b)
      in
      succ.(i) <- targets;
      List.iter (fun j -> pred.(j) <- i :: pred.(j)) targets)
    blocks;
  Array.iteri (fun j ps -> pred.(j) <- List.rev ps) pred;
  { program; blocks; labels; succ; pred }

let n_blocks t = Array.length t.labels
let entry _ = 0

let index_of t label =
  let n = Array.length t.labels in
  let rec go i =
    if i >= n then raise Not_found
    else if t.labels.(i) = label then i
    else go (i + 1)
  in
  go 0

let block t i = t.blocks.(i)

let reachable t =
  let n = n_blocks t in
  let seen = Array.make n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit t.succ.(i)
    end
  in
  visit 0;
  seen

let reverse_postorder t =
  let n = n_blocks t in
  let seen = Array.make n false in
  let order = ref [] in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      List.iter visit t.succ.(i);
      order := i :: !order
    end
  in
  visit 0;
  Array.of_list !order

let edge_count t = Array.fold_left (fun acc s -> acc + List.length s) 0 t.succ
