(** Barrier intervals: the program regions between synchronizations.

    Every [BAR] instruction opens a new {e phase}; phase 0 is the
    virtual barrier before the entry block.  A reaching-barriers
    forward dataflow assigns each instruction the set of phases it can
    execute in: on loop back edges an instruction after a [BAR] can
    also re-execute before the next dynamic barrier, so its phase set
    contains every barrier whose interval may contain it.  Two
    shared-memory accesses can interleave without an ordering barrier
    exactly when their phase sets intersect — the gating fact the race
    detector ({!Gat_analysis}) builds on. *)

type t

val compute : Cfg.t -> t

val barrier_count : t -> int
(** Number of [BAR] instructions in the program. *)

type barrier = {
  id : int;  (** Phase id opened by this barrier ([>= 1]). *)
  block_index : int;
  block_label : string;
  instr_index : int;  (** Position within the block body. *)
}

val barriers : t -> barrier list
(** All barriers, in block/program order. *)

val block_entry_phases : t -> int -> int list
(** Sorted phase ids reaching a block's entry ([[]] when the block is
    unreachable from the entry). *)

val instr_phases : t -> block:int -> instr:int -> int list
(** Sorted phase ids in which body instruction [instr] of block
    [block] can execute (the reaching set just before it). *)

val may_share_phase : t -> int * int -> int * int -> bool
(** [may_share_phase t (b1, i1) (b2, i2)] — can the two body
    instructions execute within the same barrier interval?  True when
    their phase sets intersect. *)
