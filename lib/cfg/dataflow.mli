(** Generic iterative data-flow solver over a {!Cfg.t}.

    Analyses are expressed as a join-semilattice plus a per-block
    transfer function; the solver runs a reverse-postorder worklist to a
    fixed point.  Both forward (reaching-style) and backward
    (liveness-style) problems are supported.  Termination requires the
    usual conditions: [join] is a least upper bound, the lattice has
    finite height, and the transfer function is monotone. *)

module type LATTICE = sig
  type t

  val bottom : t
  (** Identity of [join]; the initial value of every program point. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) : sig
  type result = {
    before : L.t array;  (** Fact at each block's entry, by node index. *)
    after : L.t array;  (** Fact at each block's exit, by node index. *)
  }

  val solve :
    ?direction:direction ->
    ?init:L.t ->
    Cfg.t ->
    transfer:(int -> Gat_isa.Basic_block.t -> L.t -> L.t) ->
    result
  (** [solve cfg ~transfer] iterates to a fixed point.  [transfer i b v]
      maps the fact flowing into block [i] (its [before] fact when
      forward, its [after] fact when backward) to the fact flowing out.
      [init] (default {!LATTICE.bottom}) is the boundary fact: it is
      joined into the entry block's [before] when forward, and into the
      [after] of every exit-terminated block when backward.  Blocks
      unreachable from the entry keep [bottom] on both sides. *)
end

val block_instructions : Gat_isa.Basic_block.t -> Gat_isa.Instruction.t list
(** The block body followed by its synthesized terminator instruction —
    the instruction stream most per-instruction transfer functions fold
    over. *)
