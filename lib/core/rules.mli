(** The rule-based heuristic — Section III-C.

    Empirical observation (paper Section IV-B): kernels with
    computational intensity above 4.0 favour the upper range of the
    statically suggested thread counts, others the lower range.
    Applying the rule on top of the occupancy-based suggestion halves
    the thread candidates again (the "RB" bar of Fig. 6). *)

val intensity_threshold : float
(** 4.0, from the paper. *)

type band = Lower | Upper

val band_of_intensity : float -> band
(** [Upper] when intensity strictly exceeds the threshold. *)

val band_name : band -> string

val effective_intensity : Imix.t -> mem_transaction_factor:float -> float
(** Intensity against {e effective} memory operations: each global
    access weighted by its transactions-per-warp from the static
    coalescing analysis.  Uncoalesced kernels look more memory-bound
    than their raw instruction mix suggests, which pushes them into the
    [Lower] band.  Factors below 1 clamp to 1. *)

val apply : intensity:float -> int list -> int list
(** Keep the lower or upper half (by position, upper half includes the
    middle element of odd-length lists) of an ascending thread-count
    list.  Empty and singleton lists pass through. *)
