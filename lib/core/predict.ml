open Gat_arch

let cost (gpu : Gpu.t) mix =
  let cc = gpu.Gpu.cc in
  let cf = Throughput.class_cpi cc Throughput.Flops in
  let cm = Throughput.class_cpi cc Throughput.Memory in
  let cb = Throughput.class_cpi cc Throughput.Control in
  let cr = Throughput.class_cpi cc Throughput.Register in
  (cf *. Imix.ofl mix)
  +. (cm *. Imix.omem mix)
  +. (cb *. Imix.octrl mix)
  +. (cr *. Imix.oreg mix)

let cost_with_memory (gpu : Gpu.t) mix ~mem_transaction_factor =
  let cc = gpu.Gpu.cc in
  let cf = Throughput.class_cpi cc Throughput.Flops in
  let cm = Throughput.class_cpi cc Throughput.Memory in
  let cb = Throughput.class_cpi cc Throughput.Control in
  let cr = Throughput.class_cpi cc Throughput.Register in
  let factor = Float.max 1.0 mem_transaction_factor in
  (cf *. Imix.ofl mix)
  +. (cm *. factor *. Imix.omem mix)
  +. (cb *. Imix.octrl mix)
  +. (cr *. Imix.oreg mix)

let cost_per_category (gpu : Gpu.t) mix =
  let cc = gpu.Gpu.cc in
  let acc =
    List.fold_left
      (fun acc cat ->
        acc +. (Throughput.cpi cc cat *. Imix.category_count mix cat))
      0.0 Throughput.all_categories
  in
  acc
  +. (Throughput.class_cpi cc Throughput.Register *. Imix.oreg mix)

let rank_order values =
  let idx = Array.init (Array.length values) Fun.id in
  Array.sort (fun a b -> compare values.(a) values.(b)) idx;
  idx

let normalized_error ~predicted ~measured =
  if Array.length predicted <> Array.length measured then
    invalid_arg "Predict.normalized_error: length mismatch";
  let order = rank_order measured in
  let permute xs = Array.map (fun i -> xs.(i)) order in
  let p = Gat_util.Stats.normalize (permute predicted) in
  let m = Gat_util.Stats.normalize (permute measured) in
  Gat_util.Stats.mae p m
