(** Eq. 6: execution-time estimation from static instruction mixes.

    [f(N) = cf*Ofl + cm*Omem + cb*Octrl + cr*Oreg], where the
    coefficients are the cycles-per-instruction of each coarse class on
    the target architecture (reciprocal Table II throughputs).  The
    estimate is a relative cost, not an absolute time: the paper
    normalizes both the estimate and the measured times before
    comparing them (Fig. 5). *)

val cost : Gat_arch.Gpu.t -> Imix.t -> float
(** The Eq. 6 weighted sum over a mix (static or estimated dynamic). *)

val cost_with_memory :
  Gat_arch.Gpu.t -> Imix.t -> mem_transaction_factor:float -> float
(** Eq. 6 with the memory term scaled by the average
    transactions-per-warp of the kernel's global accesses, as reported
    by the static coalescing analysis: an uncoalesced kernel pays its
    [cm*Omem] term once per replayed transaction.  Factors below 1 are
    clamped to 1 (the issue cost is a floor). *)

val cost_per_category : Gat_arch.Gpu.t -> Imix.t -> float
(** A finer-grained variant that weights every Table II category by its
    own CPI instead of the class average — used by the ablation bench to
    quantify what the class-level coefficients lose. *)

val rank_order : float array -> int array
(** Permutation that sorts values ascending — the paper sorts variants
    by measured time before plotting normalized curves. *)

val normalized_error :
  predicted:float array -> measured:float array -> float
(** Mean absolute error between the two series after each is normalized
    to [0, 1] and the [measured] series' sort order is applied to both
    (the Fig. 5 methodology). *)
