let intensity_threshold = 4.0

type band = Lower | Upper

let band_of_intensity intensity =
  if intensity > intensity_threshold then Upper else Lower

let band_name = function Lower -> "lower" | Upper -> "upper"

let effective_intensity mix ~mem_transaction_factor =
  let m =
    Imix.omem mix *. Float.max 1.0 mem_transaction_factor
  in
  if m <= 0.0 then Imix.ofl mix else Imix.ofl mix /. m

let apply ~intensity threads =
  let n = List.length threads in
  if n <= 1 then threads
  else begin
    let half = n / 2 in
    match band_of_intensity intensity with
    | Lower -> List.filteri (fun i _ -> i < half) threads
    | Upper -> List.filteri (fun i _ -> i >= half) threads
  end
