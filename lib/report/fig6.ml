type row = {
  kernel : string;
  family : string;
  static_improvement : float;
  rule_improvement : float;
  static_quality : float;
  rule_quality : float;
}

let row kernel gpu =
  let space = Gat_tuner.Space.paper in
  let n = Context.eval_size kernel in
  let pruning =
    match Gat_tuner.Static_search.prune kernel gpu space with
    | Ok p -> p
    | Error e -> Gat_util.Error.fail Compile e
  in
  let obj = Gat_tuner.Tuner.objective kernel gpu ~n ~seed:Context.seed in
  (* Reuse the cached sweep for the exhaustive baseline. *)
  let exhaustive_best =
    List.fold_left
      (fun acc (v : Gat_tuner.Variant.t) -> Float.min acc v.Gat_tuner.Variant.time_ms)
      infinity (Context.sweep kernel gpu)
  in
  let quality target =
    let outcome = Gat_tuner.Strategies.exhaustive obj target in
    exhaustive_best /. outcome.Gat_tuner.Search.best_time
  in
  {
    kernel = kernel.Gat_ir.Kernel.name;
    family = Gat_arch.Gpu.family gpu;
    static_improvement =
      Gat_tuner.Static_search.reduction ~original:space
        ~pruned:pruning.Gat_tuner.Static_search.static_space;
    rule_improvement =
      Gat_tuner.Static_search.reduction ~original:space
        ~pruned:pruning.Gat_tuner.Static_search.rule_space;
    static_quality = quality pruning.Gat_tuner.Static_search.static_space;
    rule_quality = quality pruning.Gat_tuner.Static_search.rule_space;
  }

let rows () =
  List.concat_map
    (fun kernel -> List.map (row kernel) Context.gpus)
    Context.kernels

let render () =
  let t =
    Gat_util.Table.create
      ~title:
        "Fig. 6. Improved search time over exhaustive autotuning:\n\
         fraction of the 5,120-variant space avoided by static pruning\n\
         and by static + rule-based pruning, with solution quality\n\
         (exhaustive best time / pruned-search best time)."
      [
        "Kernel"; "Arch"; "Static impr."; "Static+RB impr.";
        "Static quality"; "Static+RB quality";
      ]
  in
  List.iter
    (fun r ->
      Gat_util.Table.add_row t
        [
          r.kernel;
          r.family;
          Printf.sprintf "%.1f%%" (100.0 *. r.static_improvement);
          Printf.sprintf "%.1f%%" (100.0 *. r.rule_improvement);
          Printf.sprintf "%.3f" r.static_quality;
          Printf.sprintf "%.3f" r.rule_quality;
        ])
    (rows ());
  Gat_util.Table.render t
