type predictor_row = {
  kernel : string;
  family : string;
  mae_class_cpi : float;
  mae_category_cpi : float;
  mae_unweighted : float;
}

let predictor_row kernel gpu =
  let variants = Context.sweep kernel gpu in
  let series cost_of =
    Array.of_list
      (List.map
         (fun (v : Gat_tuner.Variant.t) ->
           let mix =
             Gat_core.Imix.scale
               (float_of_int
                  (Gat_compiler.Params.total_threads v.Gat_tuner.Variant.params))
               v.Gat_tuner.Variant.est_mix
           in
           cost_of mix)
         variants)
  in
  let measured =
    Array.of_list
      (List.map (fun (v : Gat_tuner.Variant.t) -> v.Gat_tuner.Variant.time_ms) variants)
  in
  let mae predicted = Gat_core.Predict.normalized_error ~predicted ~measured in
  {
    kernel = kernel.Gat_ir.Kernel.name;
    family = Gat_arch.Gpu.family gpu;
    mae_class_cpi = mae (series (Gat_core.Predict.cost gpu));
    mae_category_cpi = mae (series (Gat_core.Predict.cost_per_category gpu));
    mae_unweighted =
      mae (series (fun mix -> Gat_core.Imix.total mix +. Gat_core.Imix.oreg mix));
  }

let predictor_rows () =
  List.concat_map
    (fun kernel -> List.map (predictor_row kernel) Context.gpus)
    Context.kernels

type pruning_row = {
  kernel : string;
  static_only : float * float;
  rules_only : float * float;
  combined : float * float;
}

let pruning_row gpu kernel =
  let space = Gat_tuner.Space.paper in
  let n = Context.eval_size kernel in
  let pruning =
    match Gat_tuner.Static_search.prune kernel gpu space with
    | Ok p -> p
    | Error e -> Gat_util.Error.fail Compile e
  in
  (* Rules-only: apply the intensity band to the raw TC axis. *)
  let rules_only_space =
    Gat_tuner.Space.with_tc space
      (Gat_core.Rules.apply
         ~intensity:pruning.Gat_tuner.Static_search.effective_intensity
         space.Gat_tuner.Space.tc)
  in
  let exhaustive_best =
    List.fold_left
      (fun acc (v : Gat_tuner.Variant.t) -> Float.min acc v.Gat_tuner.Variant.time_ms)
      infinity (Context.sweep kernel gpu)
  in
  let obj = Gat_tuner.Tuner.objective kernel gpu ~n ~seed:Context.seed in
  let evaluate target =
    let outcome = Gat_tuner.Strategies.exhaustive obj target in
    ( Gat_tuner.Static_search.reduction ~original:space ~pruned:target,
      exhaustive_best /. outcome.Gat_tuner.Search.best_time )
  in
  {
    kernel = kernel.Gat_ir.Kernel.name;
    static_only = evaluate pruning.Gat_tuner.Static_search.static_space;
    rules_only = evaluate rules_only_space;
    combined = evaluate pruning.Gat_tuner.Static_search.rule_space;
  }

let pruning_rows ?(gpu = Gat_arch.Gpu.k20) () =
  List.map (pruning_row gpu) Context.kernels

let render () =
  let buf = Buffer.create 4096 in
  let t1 =
    Gat_util.Table.create
      ~title:
        "Ablation A. Eq. 6 weighting: normalized MAE of three predictor\n\
         variants against measured time (lower is better)."
      [ "Kernel"; "Arch"; "class CPI (paper)"; "per-category CPI"; "unweighted" ]
  in
  List.iter
    (fun (r : predictor_row) ->
      Gat_util.Table.add_row t1
        [
          r.kernel;
          r.family;
          Printf.sprintf "%.4f" r.mae_class_cpi;
          Printf.sprintf "%.4f" r.mae_category_cpi;
          Printf.sprintf "%.4f" r.mae_unweighted;
        ])
    (predictor_rows ());
  Buffer.add_string buf (Gat_util.Table.render t1);
  Buffer.add_char buf '\n';
  let t2 =
    Gat_util.Table.create
      ~title:
        "Ablation B. Pruning decomposition on Kepler: space reduction /\n\
         solution quality for the occupancy suggestion (static), the\n\
         intensity rule alone (RB), and their composition."
      [ "Kernel"; "static"; "RB only"; "static+RB" ]
  in
  List.iter
    (fun (r : pruning_row) ->
      let fmt (reduction, quality) =
        Printf.sprintf "%.1f%% / %.3f" (100.0 *. reduction) quality
      in
      Gat_util.Table.add_row t2
        [ r.kernel; fmt r.static_only; fmt r.rules_only; fmt r.combined ])
    (pruning_rows ());
  Buffer.add_string buf (Gat_util.Table.render t2);
  Buffer.contents buf
