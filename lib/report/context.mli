(** Shared experiment configuration: which devices, kernels, sizes and
    seed every report uses, so the whole evaluation is reproducible from
    one number.

    All sweep-derived values are memoized per (kernel, device): the
    multi-size sweeps run through the compile-sharing
    {!Gat_tuner.Tuner.sweep_multi} engine (each variant is compiled
    once, then simulated at every input size), and rankings are
    computed once however many figures and tables ask for them. *)

val seed : int
(** 42. *)

val gpus : Gat_arch.Gpu.t list
(** The Table I testbed. *)

val kernels : Gat_ir.Kernel.t list
(** The Table IV kernels. *)

val eval_size : Gat_ir.Kernel.t -> int
(** Problem size used for the sweep-based experiments: the middle of
    the paper's five input sizes. *)

val sweep : Gat_ir.Kernel.t -> Gat_arch.Gpu.t -> Gat_tuner.Variant.t list
(** The exhaustive 5,120-variant evaluation for a kernel/device pair
    at {!eval_size} (process-cached). *)

val ranking : Gat_ir.Kernel.t -> Gat_arch.Gpu.t -> Gat_tuner.Ranking.t
(** The sweep split at the 50th percentile (memoized). *)

val sweeps :
  Gat_ir.Kernel.t -> Gat_arch.Gpu.t -> (int * Gat_tuner.Variant.t list) list
(** One exhaustive sweep per paper input size, sharing one compile
    phase across all sizes (memoized). *)

val pooled_ranking : Gat_ir.Kernel.t -> Gat_arch.Gpu.t -> Gat_tuner.Ranking.t
(** Rank variants within each input size, then pool the rank-1 and
    rank-2 halves across sizes — the population behind the paper's
    Fig. 4 histograms and Table V statistics (memoized). *)

val reset : unit -> unit
(** Drop every memoized sweep and ranking, forcing recomputation on the
    next request.  For harnesses (the benchmark's warm-cache pass) and
    tests; reports never need it. *)
