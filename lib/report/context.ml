let seed = 42
let gpus = Gat_arch.Gpu.all
let kernels = Gat_workloads.Workloads.all
let eval_size kernel = Gat_workloads.Workloads.default_size kernel

(* Memoization shared by every report: sweeps are expensive and several
   experiments (Fig. 4, Table V) ask for the same rankings repeatedly,
   so each derived value is computed once per (kernel, gpu).  The
   double-checked pattern keeps the lock out of the (possibly parallel)
   sweep itself. *)
let lock = Mutex.create ()

let memo tbl key compute =
  let cached =
    Gat_util.Pool.with_lock lock (fun () -> Hashtbl.find_opt tbl key)
  in
  match cached with
  | Some v -> v
  | None ->
      let v = compute () in
      Gat_util.Pool.with_lock lock (fun () ->
          match Hashtbl.find_opt tbl key with
          | Some v' -> v'
          | None ->
              Hashtbl.add tbl key v;
              v)

let pair_key kernel gpu =
  kernel.Gat_ir.Kernel.name ^ "|" ^ gpu.Gat_arch.Gpu.name

let sweep kernel gpu =
  Gat_tuner.Tuner.sweep kernel gpu ~n:(eval_size kernel) ~seed

let sweeps_tbl : (string, (int * Gat_tuner.Variant.t list) list) Hashtbl.t =
  Hashtbl.create 16

let sweeps kernel gpu =
  memo sweeps_tbl (pair_key kernel gpu) (fun () ->
      (* One compile per variant, five simulate passes — the
         compile-sharing multi-size sweep. *)
      Gat_tuner.Tuner.sweep_multi kernel gpu
        ~ns:(Gat_workloads.Workloads.input_sizes kernel)
        ~seed)

let ranking_tbl : (string, Gat_tuner.Ranking.t) Hashtbl.t = Hashtbl.create 16

let ranking kernel gpu =
  memo ranking_tbl (pair_key kernel gpu) (fun () ->
      Gat_tuner.Ranking.split (sweep kernel gpu))

let pooled_tbl : (string, Gat_tuner.Ranking.t) Hashtbl.t = Hashtbl.create 16

let reset () =
  Gat_util.Pool.with_lock lock (fun () ->
      Hashtbl.reset sweeps_tbl;
      Hashtbl.reset ranking_tbl;
      Hashtbl.reset pooled_tbl)

let pooled_ranking kernel gpu =
  memo pooled_tbl (pair_key kernel gpu) (fun () ->
      let rankings =
        List.map (fun (_, vs) -> Gat_tuner.Ranking.split vs) (sweeps kernel gpu)
      in
      {
        Gat_tuner.Ranking.rank1 =
          List.concat_map (fun r -> r.Gat_tuner.Ranking.rank1) rankings;
        rank2 = List.concat_map (fun r -> r.Gat_tuner.Ranking.rank2) rankings;
      })
