open Gat_arch
open Gat_isa
module Memory_model = Gat_analysis.Memory_model
module Coalescing = Gat_analysis.Coalescing

type t = {
  n_blocks : int;
  n_categories : int;
  labels : string array;
  index : (string, int) Hashtbl.t;
  residency : Gat_core.Occupancy.result;
  issue_cycles : float array;
  global_loads : float array;
  barriers : float array;
  instr_counts : float array;
  mix_counts : int array array;
  reg_ops : float array array;
  mem_transactions : float array array;
  mem_load_latency : float array array;
}

let categories = Array.of_list Throughput.all_categories
let n_categories = Array.length categories

let category_index =
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun i c -> Hashtbl.replace tbl c i) categories;
  fun c -> Hashtbl.find tbl c

let warp_issue_cycles gpu op =
  32.0 /. Throughput.ipc gpu.Gpu.cc (Opcode.category op)

(* Resident blocks per SM, honouring the L1-preference shared-memory
   carveout where it exists; if the carveout would make the kernel
   unlaunchable the hardware ignores the preference (it is a hint).
   Size-independent, so resolved once per compiled variant. *)
let residency gpu (params : Params.t) ~regs_per_thread ~smem_per_block =
  let occ_input =
    Gat_core.Occupancy.input ~regs_per_thread ~smem_per_block
      ~threads_per_block:params.Params.threads_per_block ()
  in
  let constrained =
    match
      Memory_model.smem_per_mp_effective gpu ~l1_pref_kb:params.Params.l1_pref_kb
    with
    | Some smem_per_mp ->
        Gat_core.Occupancy.calculate_with ~smem_per_mp gpu occ_input
    | None -> Gat_core.Occupancy.calculate gpu occ_input
  in
  if constrained.Gat_core.Occupancy.active_blocks > 0 then constrained
  else Gat_core.Occupancy.calculate gpu occ_input

let build ~gpu ~(params : Params.t) ~regs_per_thread ~mem_summary program =
  let blocks = Array.of_list program.Program.blocks in
  let n_blocks = Array.length blocks in
  let labels = Array.map (fun b -> b.Basic_block.label) blocks in
  let index = Hashtbl.create (2 * n_blocks) in
  Array.iteri (fun i l -> Hashtbl.replace index l i) labels;
  let issue_cycles = Array.make n_blocks 0.0 in
  let global_loads = Array.make n_blocks 0.0 in
  let barriers = Array.make n_blocks 0.0 in
  let instr_counts = Array.make n_blocks 0.0 in
  let mix_counts = Array.init n_blocks (fun _ -> Array.make n_categories 0) in
  let reg_ops = Array.make n_blocks [||] in
  let mem_transactions = Array.make n_blocks [||] in
  let mem_load_latency = Array.make n_blocks [||] in
  Array.iteri
    (fun i b ->
      (* The issue cost folds terminator-first, then the body — the
         exact association order of the per-run fold it replaces, so
         the precomputed sum is bit-identical. *)
      issue_cycles.(i) <-
        List.fold_left
          (fun acc ins -> acc +. warp_issue_cycles gpu ins.Instruction.op)
          (warp_issue_cycles gpu
             (Basic_block.terminator_instruction b).Instruction.op)
          b.Basic_block.body;
      List.iter
        (fun ins ->
          if
            Opcode.is_global_memory ins.Instruction.op
            && Opcode.is_load ins.Instruction.op
          then global_loads.(i) <- global_loads.(i) +. 1.0;
          if Opcode.is_barrier ins.Instruction.op then
            barriers.(i) <- barriers.(i) +. 1.0)
        b.Basic_block.body;
      instr_counts.(i) <- float_of_int (Basic_block.instruction_count b);
      (* Instruction mix: static per-category counts plus the
         register-operand sequence in body-then-terminator order (the
         order the accumulation must replay to stay bit-identical). *)
      let instrs = b.Basic_block.body @ [ Basic_block.terminator_instruction b ] in
      let mc = mix_counts.(i) in
      List.iter
        (fun ins ->
          let ci = category_index (Opcode.category ins.Instruction.op) in
          mc.(ci) <- mc.(ci) + 1)
        instrs;
      reg_ops.(i) <-
        Array.of_list
          (List.map
             (fun ins -> float_of_int (Instruction.register_operands ins))
             instrs);
      let accesses =
        Option.value ~default:[]
          (List.assoc_opt b.Basic_block.label mem_summary)
      in
      mem_transactions.(i) <-
        Array.of_list (List.map Memory_model.access_transactions accesses);
      mem_load_latency.(i) <-
        Array.of_list
          (List.filter_map
             (fun (a : Coalescing.access) ->
               if a.Coalescing.kind = `Load then
                 Some
                   (Memory_model.access_latency gpu
                      ~l1_pref_kb:params.Params.l1_pref_kb
                      ~staging:params.Params.staging a)
               else None)
             accesses))
    blocks;
  {
    n_blocks;
    n_categories;
    labels;
    index;
    residency =
      residency gpu params ~regs_per_thread
        ~smem_per_block:(Program.smem_per_block program);
    issue_cycles;
    global_loads;
    barriers;
    instr_counts;
    mix_counts;
    reg_ops;
    mem_transactions;
    mem_load_latency;
  }
