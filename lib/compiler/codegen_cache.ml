(* Backend memoization across the launch-geometry axes of a sweep.

   Schedule, register allocation and the static coalescing analysis
   depend only on the instruction streams, which TC and BC never
   shape; lowering bakes the launch geometry exclusively into the
   per-block execution weights.  The cache key is therefore the
   weight-free structural digest of the virtual program
   ([Fingerprint.program]) plus the device identity: every variant in
   the TC×BC plane of a sweep keys identically and compiles the
   backend exactly once per process.

   Two tiers.  The in-memory table gives same-process sharing at
   hashtable speed.  A memory miss then consults the persistent
   artifact store ({!Artifacts}) — scheduling per block body, register
   allocation and coalescing per program — which shares the results
   across runs and processes, and makes a one-block kernel edit
   recompile O(delta): the unchanged blocks' scheduled bodies still
   hit, only the edited block is rescheduled.

   The digest subsumes the old structural-equality walk: two programs
   with equal digests have equal labels, bodies and terminators, so
   re-attaching the current variant's weights is a positional zip. *)

open Gat_isa

type outcome = {
  program : Program.t;
  alloc_stats : Regalloc.stats;
  mem_summary : (string * Gat_analysis.Coalescing.access list) list;
}

type entry = {
  out_blocks : Basic_block.t list;
  out_stats : Regalloc.stats;
  out_summary : (string * Gat_analysis.Coalescing.access list) list;
}

type stats = { classes : int; hits : int; misses : int }

let table : (string * string, entry) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()
let hit_count = ref 0
let miss_count = ref 0
let m_hits = Gat_util.Metrics.counter "cache.codegen.hits"
let m_misses = Gat_util.Metrics.counter "cache.codegen.misses"

let stats () =
  Gat_util.Pool.with_lock lock (fun () ->
      { classes = Hashtbl.length table; hits = !hit_count; misses = !miss_count })

let clear () =
  Gat_util.Pool.with_lock lock (fun () ->
      Hashtbl.reset table;
      hit_count := 0;
      miss_count := 0)

(* Re-attach the current variant's weights to the cached output blocks.
   Equal digests guarantee equal labels and layout order, and the
   backend passes preserve both, so a positional zip is exact. *)
let reweight vp_blocks out_blocks =
  List.map2
    (fun (v : Basic_block.t) (o : Basic_block.t) ->
      Basic_block.make ~weight:v.Basic_block.weight
        ~active_frac:v.Basic_block.active_frac o.Basic_block.label
        o.Basic_block.body o.Basic_block.term)
    vp_blocks out_blocks

(* Per-block scheduling through the artifact store: each body is its
   own content-addressed unit, so after a one-block edit every other
   block's scheduled body is served from disk.  Single-instruction
   bodies are a fixed point of the scheduler — not worth a file. *)
let schedule_block (b : Basic_block.t) =
  match b.Basic_block.body with
  | [] | [ _ ] -> Schedule.block b
  | body -> (
      let key = Artifacts.sched_key body in
      match Artifacts.find_sched ~key with
      | Some scheduled ->
          Basic_block.make ~weight:b.Basic_block.weight
            ~active_frac:b.Basic_block.active_frac b.Basic_block.label
            scheduled b.Basic_block.term
      | None ->
          let sb = Schedule.block b in
          Artifacts.store_sched ~key sb.Basic_block.body;
          sb)

let schedule_program (vp : Program.t) =
  let blocks = List.map schedule_block vp.Program.blocks in
  Program.make ~name:vp.Program.name ~target:vp.Program.target
    ~regs_per_thread:vp.Program.regs_per_thread
    ~smem_static:vp.Program.smem_static ~smem_dynamic:vp.Program.smem_dynamic
    blocks

let regalloc gpu scheduled =
  let key = Artifacts.ra_key ~gpu scheduled in
  match Artifacts.find_ra ~key with
  | Some (blocks, st) ->
      let blocks = reweight scheduled.Program.blocks blocks in
      let program =
        Program.make ~name:scheduled.Program.name
          ~target:scheduled.Program.target
          ~regs_per_thread:st.Regalloc.regs_used
          ~smem_static:scheduled.Program.smem_static
          ~smem_dynamic:scheduled.Program.smem_dynamic blocks
      in
      (program, st)
  | None ->
      let program, st = Regalloc.run gpu scheduled in
      Artifacts.store_ra ~key program st;
      (program, st)

let coalescing gpu vp =
  let key = Artifacts.coal_key ~gpu vp in
  match Artifacts.find_coal ~key with
  | Some summary -> summary
  | None ->
      let summary =
        Gat_analysis.Coalescing.block_transactions gpu
          (Gat_cfg.Cfg.of_program vp)
      in
      Artifacts.store_coal ~key summary;
      summary

let compute gpu vp =
  let scheduled =
    Gat_util.Trace.span "compile.schedule" (fun () -> schedule_program vp)
  in
  let program, alloc_stats =
    Gat_util.Trace.span "compile.regalloc" (fun () -> regalloc gpu scheduled)
  in
  let mem_summary =
    Gat_util.Trace.span "compile.coalescing" (fun () -> coalescing gpu vp)
  in
  { program; alloc_stats; mem_summary }

let run ~(gpu : Gat_arch.Gpu.t) ~(params : Params.t) (vp : Program.t) =
  ignore params;
  (* The digest covers everything the backend reads — the params that
     shape code (unroll, staging, fast_math) already shaped [vp], so
     they need no separate key component. *)
  let key = (Gat_arch.Gpu.identity gpu, Fingerprint.program vp) in
  let cached =
    Gat_util.Pool.with_lock lock (fun () -> Hashtbl.find_opt table key)
  in
  match cached with
  | Some e ->
      Gat_util.Pool.with_lock lock (fun () -> incr hit_count);
      Gat_util.Metrics.incr m_hits;
      let blocks = reweight vp.Program.blocks e.out_blocks in
      let program =
        Program.make ~name:vp.Program.name ~target:vp.Program.target
          ~regs_per_thread:e.out_stats.Regalloc.regs_used
          ~smem_static:vp.Program.smem_static
          ~smem_dynamic:vp.Program.smem_dynamic blocks
      in
      { program; alloc_stats = e.out_stats; mem_summary = e.out_summary }
  | None ->
      let r = compute gpu vp in
      Gat_util.Metrics.incr m_misses;
      Gat_util.Pool.with_lock lock (fun () ->
          incr miss_count;
          Hashtbl.replace table key
            {
              out_blocks = r.program.Program.blocks;
              out_stats = r.alloc_stats;
              out_summary = r.mem_summary;
            });
      r
