open Gat_isa

type outcome = {
  program : Program.t;
  alloc_stats : Regalloc.stats;
  mem_summary : (string * Gat_analysis.Coalescing.access list) list;
}

type entry = {
  in_blocks : Basic_block.t list;
  out_blocks : Basic_block.t list;
  out_stats : Regalloc.stats;
  out_summary : (string * Gat_analysis.Coalescing.access list) list;
}

type stats = { classes : int; hits : int; misses : int }

let table : (string * string * int * int * int * bool, entry) Hashtbl.t =
  Hashtbl.create 64

let lock = Mutex.create ()
let hit_count = ref 0
let miss_count = ref 0
let m_hits = Gat_util.Metrics.counter "cache.codegen.hits"
let m_misses = Gat_util.Metrics.counter "cache.codegen.misses"

let stats () =
  Gat_util.Pool.with_lock lock (fun () ->
      { classes = Hashtbl.length table; hits = !hit_count; misses = !miss_count })

let clear () =
  Gat_util.Pool.with_lock lock (fun () ->
      Hashtbl.reset table;
      hit_count := 0;
      miss_count := 0)

(* Weight-free structural equality: labels, bodies and terminators, but
   not the per-block execution weights, which are the only part of the
   lowered code that depends on TC and BC. *)
let same_code (a : Basic_block.t) (b : Basic_block.t) =
  String.equal a.Basic_block.label b.Basic_block.label
  && a.Basic_block.body = b.Basic_block.body
  && a.Basic_block.term = b.Basic_block.term

let same_program_code xs ys =
  List.length xs = List.length ys && List.for_all2 same_code xs ys

(* Re-attach the current variant's weights to the cached output blocks.
   Labels and layout order are identical by [same_program_code], and the
   backend passes preserve both, so a positional zip is exact. *)
let reweight vp_blocks out_blocks =
  List.map2
    (fun (v : Basic_block.t) (o : Basic_block.t) ->
      Basic_block.make ~weight:v.Basic_block.weight
        ~active_frac:v.Basic_block.active_frac o.Basic_block.label
        o.Basic_block.body o.Basic_block.term)
    vp_blocks out_blocks

let compute gpu vp =
  let scheduled =
    Gat_util.Trace.span "compile.schedule" (fun () -> Schedule.program vp)
  in
  let program, alloc_stats =
    Gat_util.Trace.span "compile.regalloc" (fun () -> Regalloc.run gpu scheduled)
  in
  let mem_summary =
    Gat_util.Trace.span "compile.coalescing" (fun () ->
        Gat_analysis.Coalescing.block_transactions gpu
          (Gat_cfg.Cfg.of_program vp))
  in
  { program; alloc_stats; mem_summary }

let run ~(gpu : Gat_arch.Gpu.t) ~(params : Params.t) (vp : Program.t) =
  let key =
    ( vp.Program.name,
      gpu.Gat_arch.Gpu.name,
      params.Params.unroll,
      params.Params.l1_pref_kb,
      params.Params.staging,
      params.Params.fast_math )
  in
  let cached =
    Gat_util.Pool.with_lock lock (fun () -> Hashtbl.find_opt table key)
  in
  match cached with
  | Some e when same_program_code e.in_blocks vp.Program.blocks ->
      Gat_util.Pool.with_lock lock (fun () -> incr hit_count);
      Gat_util.Metrics.incr m_hits;
      let blocks = reweight vp.Program.blocks e.out_blocks in
      let program =
        Program.make ~name:vp.Program.name ~target:vp.Program.target
          ~regs_per_thread:e.out_stats.Regalloc.regs_used
          ~smem_static:vp.Program.smem_static
          ~smem_dynamic:vp.Program.smem_dynamic blocks
      in
      { program; alloc_stats = e.out_stats; mem_summary = e.out_summary }
  | _ ->
      let r = compute gpu vp in
      Gat_util.Metrics.incr m_misses;
      Gat_util.Pool.with_lock lock (fun () ->
          incr miss_count;
          Hashtbl.replace table key
            {
              in_blocks = vp.Program.blocks;
              out_blocks = r.program.Program.blocks;
              out_stats = r.alloc_stats;
              out_summary = r.mem_summary;
            });
      r
