(** Backend memoization across the launch-geometry axes.

    Lowering bakes TC and BC only into the per-block execution weights;
    the instruction streams of a lowered kernel are identical across
    every (TC, BC) point of a sweep once the code-shaping parameters
    (UIF, PL, SC, CFLAGS) are fixed.  Scheduling, register allocation
    and the static coalescing analysis read only the instruction
    streams, so their results can be shared across all of those points.

    The key is the weight-free structural digest of the virtual
    program ({!Gat_isa.Fingerprint.program}) plus the device identity
    — the shared content-addressed key of the whole backend.  Sound by
    construction: equal digests mean equal labels, bodies and
    terminators, so any kernel that did bake launch geometry into its
    code digests differently and recompiles, never answers
    incorrectly.  Reused outputs get the current variant's weights
    re-attached, so the result is bit-identical to a fresh compile.

    Two tiers: the in-memory table (same-process, hashtable speed),
    then the persistent {!Artifacts} store — per-block scheduling
    entries plus per-program register-allocation and coalescing
    entries — which shares results across runs and processes and makes
    a one-block kernel edit recompile O(delta).

    Thread-safe; sweeps compile variants from parallel pool workers.
    Counters: [cache.codegen.hits] / [cache.codegen.misses] (in-memory
    tier), [artifact.{sched,ra,coal}.*] (persistent tier). *)

type outcome = {
  program : Gat_isa.Program.t;  (** Physical-register form. *)
  alloc_stats : Regalloc.stats;
  mem_summary : (string * Gat_analysis.Coalescing.access list) list;
}

val run :
  gpu:Gat_arch.Gpu.t -> params:Params.t -> Gat_isa.Program.t -> outcome
(** [run ~gpu ~params vp] schedules, register-allocates and
    coalescing-analyzes the lowered program [vp], reusing any previous
    result whose structural digest matches.  [params] is accepted for
    interface stability only: every parameter that shapes the
    backend's input already shaped [vp], so the digest subsumes it. *)

type stats = { classes : int; hits : int; misses : int }

val stats : unit -> stats
(** In-memory tier only; the persistent tier reports through
    {!Artifacts.stats}. *)

val clear : unit -> unit
(** Drop the in-memory tier (persistent artifacts survive). *)
