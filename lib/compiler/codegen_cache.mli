(** Backend memoization across the launch-geometry axes.

    Lowering bakes TC and BC only into the per-block execution weights;
    the instruction streams of a lowered kernel are identical across
    every (TC, BC) point of a sweep once the code-shaping parameters
    (UIF, PL, SC, CFLAGS) are fixed.  Scheduling, register allocation
    and the static coalescing analysis read only the instruction
    streams, so their results can be shared across all of those points.

    The cache is sound by construction, not by assumption: a stored
    result is reused only after a weight-free structural comparison of
    the incoming virtual blocks against the blocks that produced it.
    Any kernel that did bake launch geometry into its code simply
    misses and is recompiled — never answered incorrectly.  Reused
    outputs get the current variant's weights re-attached, so the
    result is bit-identical to a fresh compile.

    Thread-safe; sweeps compile variants from parallel pool workers. *)

type outcome = {
  program : Gat_isa.Program.t;  (** Physical-register form. *)
  alloc_stats : Regalloc.stats;
  mem_summary : (string * Gat_analysis.Coalescing.access list) list;
}

val run :
  gpu:Gat_arch.Gpu.t -> params:Params.t -> Gat_isa.Program.t -> outcome
(** [run ~gpu ~params vp] schedules, register-allocates and
    coalescing-analyzes the lowered program [vp], reusing a previous
    result when the instruction streams match modulo block weights. *)

type stats = { classes : int; hits : int; misses : int }

val stats : unit -> stats
val clear : unit -> unit
