(** Execution profile of a compiled variant.

    The lowering pass knows the exact loop structure it emitted — which
    block is the grid-stride header, each sequential loop's bounds and
    unroll split, every conditional's condition — so it can compute, for
    any problem size [n], the exact number of warp-level issues of every
    basic block and the average fraction of active lanes.  The simulator
    uses these counts as the ground-truth dynamic behaviour; the static
    analyzer never sees them (it only has the block weight polynomials,
    which are smooth approximations).

    Per-access memory-transaction counts live in
    [Gat_analysis.Coalescing] (a static analysis of the emitted code)
    and reach the simulator through [Driver.compiled.mem_summary]. *)

type agg = {
  execs : float;  (** Warp-level issues of the block across the grid. *)
  lanes : float;  (** Average fraction of the 32 lanes active, (0,1]. *)
}

type t = {
  total_warps : int;  (** Warps launched: BC * ceil(TC/32). *)
  warps_per_block : int;
  work_items : int -> int;
      (** Parallel-loop iterations at problem size [n] — the number of
          threads that do real work. *)
  block_counts : int -> (string * agg) list;
      (** Exact per-block execution aggregates at problem size [n]
          (memoized). *)
}

val find_counts : t -> n:int -> string -> agg
(** Aggregate of one block ({!agg} of zero for labels never recorded —
    does not happen for blocks emitted by the lowering). *)

val total_issues : t -> n:int -> float
(** Total warp issues across all blocks (each block's instruction count
    is not included — multiply per block for instruction totals). *)

(** Evaluation of pure (array-free) IR expressions — used for the
    Monte-Carlo branch-probability estimation and the stride analysis.
    Exposed for tests. *)
val eval_pure :
  bindings:(string * float) list -> n:int -> Gat_ir.Expr.t -> float option

val monte_carlo_prob :
  cond:Gat_ir.Expr.t ->
  var:string ->
  lo:Gat_ir.Expr.t ->
  hi:Gat_ir.Expr.t ->
  n:int ->
  float
(** Probability that [cond] holds for [var] uniform over [\[lo, hi)] at
    problem size [n], estimated with a fixed-seed 512-sample Monte
    Carlo; 0.5 when the condition is not purely index-based. *)
