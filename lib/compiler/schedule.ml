open Gat_isa

let is_mem ins = Opcode.is_memory ins.Instruction.op
let is_store ins = is_mem ins && not (Opcode.is_load ins.Instruction.op)
let is_barrier ins = Opcode.is_barrier ins.Instruction.op

(* Register lists are tiny (<= 1 def, <= 3 uses), so a direct product
   membership check on int-encoded registers beats building balanced
   sets for every pair. *)
let reg_code (r : Register.t) =
  (2 * r.Register.id)
  + match r.Register.cls with Register.Pred -> 1 | Register.Gpr -> 0

let overlap xs ys =
  List.exists (fun (x : int) -> List.exists (fun y -> x = y) ys) xs

let block (b : Basic_block.t) =
  let instrs = Array.of_list b.Basic_block.body in
  let n = Array.length instrs in
  if n <= 1 then b
  else begin
    (* Hoist the per-instruction def/use lists out of the O(n^2)
       dependence loop: the pair test itself allocates nothing. *)
    let defs =
      Array.map (fun i -> List.map reg_code (Instruction.defs i)) instrs
    in
    let uses =
      Array.map (fun i -> List.map reg_code (Instruction.uses i)) instrs
    in
    let mem = Array.map is_mem instrs in
    let store = Array.map is_store instrs in
    let barrier = Array.map is_barrier instrs in
    let depends i j =
      (mem.(i) && mem.(j) && (store.(i) || store.(j)))
      || barrier.(i) || barrier.(j)
      || overlap defs.(i) uses.(j)
      || overlap uses.(i) defs.(j)
      || overlap defs.(i) defs.(j)
    in
    (* preds.(j) = indices i < j that j depends on. *)
    let preds = Array.make n [] in
    let succs = Array.make n [] in
    for j = 1 to n - 1 do
      for i = 0 to j - 1 do
        if depends i j then begin
          preds.(j) <- i :: preds.(j);
          succs.(i) <- j :: succs.(i)
        end
      done
    done;
    (* feeds_load.(i): i is a load, or transitively feeds one via RAW
       (approximated by any dependence edge into a feeding node). *)
    let feeds_load = Array.make n false in
    for i = n - 1 downto 0 do
      if Opcode.is_load instrs.(i).Instruction.op then feeds_load.(i) <- true
      else if List.exists (fun j -> feeds_load.(j)) succs.(i) then
        feeds_load.(i) <- true
    done;
    let unscheduled_preds = Array.map List.length preds in
    let scheduled = Array.make n false in
    let order = ref [] in
    for _ = 1 to n do
      (* Ready instructions, preferring the load-feeding slice. *)
      let best = ref (-1) in
      for i = n - 1 downto 0 do
        if (not scheduled.(i)) && unscheduled_preds.(i) = 0 then begin
          match !best with
          | -1 -> best := i
          | cur ->
              (* Prefer load-feeders; tie-break on original order. *)
              if
                (feeds_load.(i) && not feeds_load.(cur))
                || (feeds_load.(i) = feeds_load.(cur) && i < cur)
              then best := i
        end
      done;
      let i = !best in
      assert (i >= 0);
      scheduled.(i) <- true;
      order := i :: !order;
      List.iter (fun j -> unscheduled_preds.(j) <- unscheduled_preds.(j) - 1) succs.(i)
    done;
    let body = List.rev_map (fun i -> instrs.(i)) !order in
    Basic_block.make ~weight:b.Basic_block.weight
      ~active_frac:b.Basic_block.active_frac b.Basic_block.label body
      b.Basic_block.term
  end

let program (p : Program.t) =
  let blocks = List.map block p.Program.blocks in
  Program.make ~name:p.Program.name ~target:p.Program.target
    ~regs_per_thread:p.Program.regs_per_thread
    ~smem_static:p.Program.smem_static ~smem_dynamic:p.Program.smem_dynamic
    blocks
