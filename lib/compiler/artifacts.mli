(** The persistent content-addressed artifact store.

    One MD5-sealed file per backend-stage result under
    [<cache root>/artifacts/], keyed by a structural hash of exactly
    the stage's inputs: the weight-free {!Gat_isa.Fingerprint} digest
    of the input code, the {!Gat_arch.Gpu.identity} of the device, the
    stage-relevant scalar parameters, and a per-stage format version.
    Variants that differ only in the launch geometry (TC, BC) or the
    problem size N key identically and share every stored result —
    across runs and across processes — while a one-instruction edit
    invalidates only the entries whose input digests moved.

    Hard invariant: a store-served result is bit-identical to a
    recomputed one.  Floats travel as [%h] hex literals and code as
    [Instruction.to_string] lines, both exact round-trips; corruption,
    truncation or a format-version mismatch reads as a miss, never as
    wrong data.  I/O failure degrades the store (warn once, latch,
    compute uncached) exactly like the sweep cache.

    Chaos hooks: the [artifact-read] / [artifact-write] fault sites.
    Observability: [artifact.{hits,misses,stores,degraded_writes,
    bytes_read,bytes_written}] counters plus per-stage
    [artifact.<stage>.{hits,misses}]. *)

val dir : unit -> string
(** The artifact directory, [<cache root>/artifacts] — shares
    {!Gat_util.Cache_dir.root} with the sweep cache. *)

val enabled : unit -> bool

val set_enabled : bool -> unit
(** [false] makes every find a silent [None] and every store a no-op
    ([gat --no-cache]). *)

val degraded : unit -> bool
(** The store hit an I/O failure and has latched itself off for
    writes. *)

val reset_degraded : unit -> unit

type stats = { hits : int; misses : int; stores : int; degraded_writes : int }

val stats : unit -> stats
(** Aggregate process-lifetime counters (all stages combined). *)

val reset_stats : unit -> unit

val versions : (string * string) list
(** The per-stage format versions, [(stage, "stage/N")] — each
    participates in its stage's keys, so bumping one orphans exactly
    that stage's entries. *)

(** {1 Stage keys}

    Keys are stable hex strings; compute once, then [find_*] and (on a
    miss) [store_*] with the same key.  All keys are weight-free: the
    launch geometry never moves them. *)

val sched_key : Gat_isa.Instruction.t list -> string
(** Per block body — the unit of the list scheduler. *)

val ra_key : gpu:Gat_arch.Gpu.t -> Gat_isa.Program.t -> string
(** Per {e scheduled} program and device. *)

val coal_key : gpu:Gat_arch.Gpu.t -> Gat_isa.Program.t -> string
(** Per {e virtual} program and device. *)

val bt_key :
  gpu:Gat_arch.Gpu.t ->
  params:Params.t ->
  regs_per_thread:int ->
  Gat_isa.Program.t ->
  string
(** Per {e virtual} program, device, and the occupancy-relevant
    scalars (TC, L1 preference, staging, allocated registers) — the
    backend pipeline downstream of the virtual program is
    deterministic, so the virtual digest subsumes the physical one. *)

val verdict_key : threads_per_block:int -> Gat_isa.Program.t -> string
(** Per {e virtual} program and TC; the verifier never reads the
    device, the block count or the problem size. *)

(** {1 Stage entries} *)

val find_sched : key:string -> Gat_isa.Instruction.t list option
(** The scheduled body.  The caller re-attaches label, terminator and
    the variant's own weight. *)

val store_sched : key:string -> Gat_isa.Instruction.t list -> unit

val find_ra :
  key:string -> (Gat_isa.Basic_block.t list * Regalloc.stats) option
(** Allocated output blocks (weight-free: [Weight.one] placeholders —
    the caller reweights positionally) plus the allocation stats. *)

val store_ra : key:string -> Gat_isa.Program.t -> Regalloc.stats -> unit

val find_coal :
  key:string -> (string * Gat_analysis.Coalescing.access list) list option
(** The per-block memory summary, block order and emission order
    preserved. *)

val store_coal :
  key:string -> (string * Gat_analysis.Coalescing.access list) list -> unit

val find_bt : key:string -> Block_table.t option
(** The full simulator table, label index rebuilt.  An entry whose
    category count disagrees with the current throughput model reads
    as a miss. *)

val store_bt : key:string -> Block_table.t -> unit

val find_verdict : key:string -> Gat_analysis.Verify.report option
(** The full safety report, findings included. *)

val store_verdict : key:string -> Gat_analysis.Verify.report -> unit

(** {1 Maintenance} — consumed by [Gat_tuner.Artifact_store] and the
    [gat cache] subcommands. *)

val entries : unit -> string list
(** Absolute paths of every [.art] entry, sorted by name. *)

val disk_usage : unit -> int * int
(** [(files, bytes)] over {!entries}. *)

val clear : unit -> int
(** Delete every entry; returns the number removed. *)
