type compiled = {
  kernel : Gat_ir.Kernel.t;
  gpu : Gat_arch.Gpu.t;
  params : Params.t;
  ptx : Gat_isa.Program.t;
  program : Gat_isa.Program.t;
  log : Ptxas_info.t;
  alloc_stats : Regalloc.stats;
  profile : Profile.t;
  mem_summary : (string * Gat_analysis.Coalescing.access list) list;
}

let compile kernel gpu params =
  match Gat_ir.Typecheck.kernel kernel with
  | Error msg -> Error ("ill-typed kernel: " ^ msg)
  | Ok () -> (
      match Params.validate gpu params with
      | Error msg -> Error ("invalid parameters: " ^ msg)
      | Ok () ->
          let virtual_program, profile = Lowering.lower kernel gpu params in
          if
            Gat_isa.Program.smem_per_block virtual_program
            > gpu.Gat_arch.Gpu.smem_per_block
          then Error "shared memory per block exceeds the device limit"
          else begin
            let scheduled = Schedule.program virtual_program in
            let program, alloc_stats = Regalloc.run gpu scheduled in
            let log = Ptxas_info.of_program program alloc_stats in
            (* Static coalescing analysis on the virtual-register form:
               pre-spill code keeps the address arithmetic fully
               trackable, and spilling never changes an access's
               pattern, only adds local traffic (reported separately). *)
            let mem_summary =
              Gat_analysis.Coalescing.block_transactions gpu
                (Gat_cfg.Cfg.of_program virtual_program)
            in
            Ok
              {
                kernel;
                gpu;
                params;
                ptx = virtual_program;
                program;
                log;
                alloc_stats;
                profile;
                mem_summary;
              }
          end)

let compile_exn kernel gpu params =
  match compile kernel gpu params with
  | Ok c -> c
  | Error msg ->
      invalid_arg (Printf.sprintf "Driver.compile %s: %s" kernel.Gat_ir.Kernel.name msg)
