type compiled = {
  kernel : Gat_ir.Kernel.t;
  gpu : Gat_arch.Gpu.t;
  params : Params.t;
  ptx : Gat_isa.Program.t;
  program : Gat_isa.Program.t;
  log : Ptxas_info.t;
  alloc_stats : Regalloc.stats;
  profile : Profile.t;
  mem_summary : (string * Gat_analysis.Coalescing.access list) list;
  block_table : Block_table.t;
}

let m_compiles = Gat_util.Metrics.counter "compile.count"
let m_rejected = Gat_util.Metrics.counter "compile.rejected"

let compile kernel gpu params =
  Gat_util.Metrics.incr m_compiles;
  let result =
    Gat_util.Trace.span "compile"
      ~args:
        [
          ("kernel", Gat_util.Trace.S kernel.Gat_ir.Kernel.name);
          ("gpu", Gat_util.Trace.S gpu.Gat_arch.Gpu.name);
          ("params", Gat_util.Trace.S (Params.to_string params));
        ]
    @@ fun () ->
    match Gat_ir.Typecheck.kernel kernel with
    | Error msg -> Error ("ill-typed kernel: " ^ msg)
    | Ok () -> (
        match Params.validate gpu params with
        | Error msg -> Error ("invalid parameters: " ^ msg)
        | Ok () ->
            let virtual_program, profile =
              Gat_util.Trace.span "compile.lower" (fun () ->
                  Lowering.lower kernel gpu params)
            in
            if
              Gat_isa.Program.smem_per_block virtual_program
              > gpu.Gat_arch.Gpu.smem_per_block
            then Error "shared memory per block exceeds the device limit"
            else begin
              (* Schedule, register allocation and the static coalescing
                 analysis (on the virtual-register form: pre-spill code
                 keeps the address arithmetic fully trackable, and
                 spilling never changes an access's pattern, only adds
                 local traffic) depend only on the instruction streams,
                 which TC and BC never shape — the backend result is
                 memoized across the launch-geometry axes of a sweep. *)
              let backend = Codegen_cache.run ~gpu ~params virtual_program in
              let program = backend.Codegen_cache.program in
              let alloc_stats = backend.Codegen_cache.alloc_stats in
              let mem_summary = backend.Codegen_cache.mem_summary in
              let log = Ptxas_info.of_program program alloc_stats in
              (* The simulator table is content-addressed on the
                 virtual program (the whole backend downstream of it is
                 deterministic) plus the occupancy-relevant scalars, so
                 BC-only and N-only variants — and re-runs in other
                 processes — serve it from the artifact store. *)
              let block_table =
                Gat_util.Trace.span "compile.block_table" (fun () ->
                    let key =
                      Artifacts.bt_key ~gpu ~params
                        ~regs_per_thread:log.Ptxas_info.registers
                        virtual_program
                    in
                    match Artifacts.find_bt ~key with
                    | Some bt -> bt
                    | None ->
                        let bt =
                          Block_table.build ~gpu ~params
                            ~regs_per_thread:log.Ptxas_info.registers
                            ~mem_summary program
                        in
                        Artifacts.store_bt ~key bt;
                        bt)
              in
              Ok
                {
                  kernel;
                  gpu;
                  params;
                  ptx = virtual_program;
                  program;
                  log;
                  alloc_stats;
                  profile;
                  mem_summary;
                  block_table;
                }
            end)
  in
  (match result with Error _ -> Gat_util.Metrics.incr m_rejected | Ok _ -> ());
  result

let compile_exn kernel gpu params =
  match compile kernel gpu params with
  | Ok c -> c
  | Error msg ->
      invalid_arg (Printf.sprintf "Driver.compile %s: %s" kernel.Gat_ir.Kernel.name msg)
