(** Compilation driver: the full `nvcc` pipeline for one code variant.

    lower (thread mapping, unrolling, instruction selection)
    -> schedule (load hoisting)
    -> register allocation (physical file, spills)
    -> compile log. *)

type compiled = {
  kernel : Gat_ir.Kernel.t;
  gpu : Gat_arch.Gpu.t;
  params : Params.t;
  ptx : Gat_isa.Program.t;
      (** Virtual-register form before scheduling and register
          allocation — what nvcc's PTX stage produces; render with
          {!Gat_isa.Ptx}. *)
  program : Gat_isa.Program.t;  (** Physical registers, final code. *)
  log : Ptxas_info.t;
  alloc_stats : Regalloc.stats;
  profile : Profile.t;  (** Execution profile for the simulator. *)
  mem_summary : (string * Gat_analysis.Coalescing.access list) list;
      (** Static coalescing analysis of the variant's global accesses,
          grouped by block label in emission order — computed once at
          compile time on the virtual-register form (pre-spill, fully
          trackable addresses) and consumed by the simulator's memory
          model. *)
  block_table : Block_table.t;
      (** Flat per-block static summary (issue cycles, mixes,
          pre-resolved memory factors, residency) — the simulator's hot
          path reads only this, so every per-variant static property is
          derived once per compile and shared across input sizes. *)
}

val compile :
  Gat_ir.Kernel.t -> Gat_arch.Gpu.t -> Params.t -> (compiled, string) result
(** Compile one variant; [Error] describes invalid parameters or an
    ill-typed kernel (never an internal failure). *)

val compile_exn : Gat_ir.Kernel.t -> Gat_arch.Gpu.t -> Params.t -> compiled
(** @raise Invalid_argument on [Error]. *)
