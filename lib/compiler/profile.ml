type agg = { execs : float; lanes : float }

type t = {
  total_warps : int;
  warps_per_block : int;
  work_items : int -> int;
  block_counts : int -> (string * agg) list;
}

let zero_agg = { execs = 0.0; lanes = 1.0 }

let find_counts t ~n label =
  match List.assoc_opt label (t.block_counts n) with
  | Some agg -> agg
  | None -> zero_agg

let total_issues t ~n =
  List.fold_left (fun acc (_, agg) -> acc +. agg.execs) 0.0 (t.block_counts n)

(* ---- pure expression evaluation ---- *)

let rec eval_pure ~bindings ~n (e : Gat_ir.Expr.t) =
  let open Gat_ir.Expr in
  let both f a b =
    match (eval_pure ~bindings ~n a, eval_pure ~bindings ~n b) with
    | Some x, Some y -> Some (f x y)
    | _ -> None
  in
  match e with
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Size -> Some (float_of_int n)
  | Var v -> List.assoc_opt v bindings
  | Read _ -> None
  | Bin (Add, a, b) -> both ( +. ) a b
  | Bin (Sub, a, b) -> both ( -. ) a b
  | Bin (Mul, a, b) -> both ( *. ) a b
  | Bin (Div, a, b) ->
      (* Integer semantics for index arithmetic: truncate. *)
      both (fun x y -> if y = 0.0 then 0.0 else Float.of_int (int_of_float (x /. y))) a b
  | Bin (Min, a, b) -> both Float.min a b
  | Bin (Max, a, b) -> both Float.max a b
  | Cmp (op, a, b) ->
      let f x y =
        let r =
          match op with
          | Eq -> x = y
          | Ne -> x <> y
          | Lt -> x < y
          | Le -> x <= y
          | Gt -> x > y
          | Ge -> x >= y
        in
        if r then 1.0 else 0.0
      in
      both f a b
  | Un (Neg, a) -> Option.map (fun x -> -.x) (eval_pure ~bindings ~n a)
  | Un (Abs, a) -> Option.map Float.abs (eval_pure ~bindings ~n a)
  | Un (Sqrt, a) -> Option.map sqrt (eval_pure ~bindings ~n a)
  | Un (Recip, a) -> Option.map (fun x -> 1.0 /. x) (eval_pure ~bindings ~n a)
  | Un (Exp, a) -> Option.map exp (eval_pure ~bindings ~n a)
  | Un (Log, a) -> Option.map log (eval_pure ~bindings ~n a)
  | Un (Sin, a) -> Option.map sin (eval_pure ~bindings ~n a)
  | Un (Cos, a) -> Option.map cos (eval_pure ~bindings ~n a)
  | Select (c, a, b) -> (
      match eval_pure ~bindings ~n c with
      | Some cv ->
          if cv <> 0.0 then eval_pure ~bindings ~n a else eval_pure ~bindings ~n b
      | None -> None)

(* [monte_carlo_prob] is a pure function of its arguments (the sampler
   is seeded deterministically below), and a sweep calls it with the
   same branch condition from every point of the TC x BC plane — so
   results are shared process-wide, keyed by the arguments themselves.
   Content keying makes the memo bit-exact by construction; the mutex
   covers parallel pool workers. *)
let mc_memo :
    (Gat_ir.Expr.t * string * Gat_ir.Expr.t * Gat_ir.Expr.t * int, float)
    Hashtbl.t =
  Hashtbl.create 64

let mc_lock = Mutex.create ()

let monte_carlo_prob_uncached ~cond ~var ~lo ~hi ~n =
  let samples = 512 in
  match
    (eval_pure ~bindings:[] ~n lo, eval_pure ~bindings:[] ~n hi)
  with
  | Some lov, Some hiv when hiv > lov ->
      let rng = Gat_util.Rng.create 0x9E37 in
      let hits = ref 0 and valid = ref 0 in
      for _ = 1 to samples do
        let x = Float.of_int (int_of_float (lov +. Gat_util.Rng.float rng (hiv -. lov))) in
        match eval_pure ~bindings:[ (var, x) ] ~n cond with
        | Some v ->
            incr valid;
            if v <> 0.0 then incr hits
        | None -> ()
      done;
      if !valid = 0 then 0.5 else float_of_int !hits /. float_of_int !valid
  | _ -> 0.5

let monte_carlo_prob ~cond ~var ~lo ~hi ~n =
  let key = (cond, var, lo, hi, n) in
  match
    Gat_util.Pool.with_lock mc_lock (fun () -> Hashtbl.find_opt mc_memo key)
  with
  | Some p -> p
  | None ->
      let p = monte_carlo_prob_uncached ~cond ~var ~lo ~hi ~n in
      Gat_util.Pool.with_lock mc_lock (fun () ->
          Hashtbl.replace mc_memo key p);
      p
