open Gat_isa
module IntSet = Set.Make (Int)

type stats = {
  regs_used : int;
  spilled_values : int;
  spill_loads : int;
  spill_stores : int;
  max_pressure : int;
}

let abi_reserved = 4
let scratch_count = 3 (* spill-rewrite temporaries *)
let pred_file = 7 (* physical predicate registers *)

let gpr_ids regs =
  List.filter_map
    (fun (r : Register.t) ->
      if r.Register.cls = Register.Gpr then Some r.Register.id else None)
    regs

(* ---- liveness ---- *)

(* Live sets are dense bitsets over virtual-register ids: the transfer
   function and the fixpoint's change test become a few word ops per
   block instead of balanced-tree unions. *)

let bits_per_word = Sys.int_size

let bitset_iter f set =
  Array.iteri
    (fun w word ->
      if word <> 0 then
        for i = 0 to bits_per_word - 1 do
          if word land (1 lsl i) <> 0 then f ((w * bits_per_word) + i)
        done)
    set

type block_info = {
  block : Basic_block.t;
  use : int array;  (* upward-exposed uses *)
  def : int array;
  live_in : int array;
  live_out : int array;
}

let block_use_def ~nwords (b : Basic_block.t) =
  let use = Array.make nwords 0 in
  let def = Array.make nwords 0 in
  let mem set v = set.(v / bits_per_word) land (1 lsl (v mod bits_per_word)) <> 0 in
  let set_bit set v =
    set.(v / bits_per_word) <- set.(v / bits_per_word) lor (1 lsl (v mod bits_per_word))
  in
  let step ins =
    List.iter
      (fun v -> if not (mem def v) then set_bit use v)
      (gpr_ids (Instruction.uses ins));
    List.iter (fun v -> set_bit def v) (gpr_ids (Instruction.defs ins))
  in
  List.iter step b.Basic_block.body;
  step (Basic_block.terminator_instruction b);
  (use, def)

let liveness (p : Program.t) =
  let nwords = (Program.max_virtual_register p + bits_per_word) / bits_per_word in
  let nwords = max nwords 1 in
  let infos =
    List.map
      (fun b ->
        let use, def = block_use_def ~nwords b in
        {
          block = b;
          use;
          def;
          live_in = Array.make nwords 0;
          live_out = Array.make nwords 0;
        })
      p.Program.blocks
  in
  let by_label = Hashtbl.create 16 in
  List.iter (fun info -> Hashtbl.replace by_label info.block.Basic_block.label info) infos;
  let rev_infos = List.rev infos in
  let out = Array.make nwords 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun info ->
        Array.fill out 0 nwords 0;
        List.iter
          (fun succ ->
            let s = (Hashtbl.find by_label succ).live_in in
            for w = 0 to nwords - 1 do
              out.(w) <- out.(w) lor s.(w)
            done)
          (Basic_block.successors info.block);
        for w = 0 to nwords - 1 do
          let o = out.(w) in
          if o <> info.live_out.(w) then begin
            info.live_out.(w) <- o;
            changed := true
          end;
          let inn = info.use.(w) lor (o land lnot info.def.(w)) in
          if inn <> info.live_in.(w) then begin
            info.live_in.(w) <- inn;
            changed := true
          end
        done)
      rev_infos
  done;
  infos

(* ---- live intervals ---- *)

type interval = { vreg : int; start_pos : int; end_pos : int }

let intervals (p : Program.t) =
  let infos = liveness p in
  (* Dense per-vreg lo/hi position arrays instead of a hashtable keyed
     by vreg: one bounds check per touch, no boxing. *)
  let n = Program.max_virtual_register p + 1 in
  let lo = Array.make n max_int in
  let hi = Array.make n (-1) in
  let note vreg pos =
    if pos < lo.(vreg) then lo.(vreg) <- pos;
    if pos > hi.(vreg) then hi.(vreg) <- pos
  in
  let pos = ref 0 in
  List.iter
    (fun info ->
      let block_start = !pos in
      bitset_iter (fun v -> note v block_start) info.live_in;
      let note_instr ins =
        List.iter (fun v -> note v !pos) (gpr_ids (Instruction.uses ins));
        List.iter (fun v -> note v !pos) (gpr_ids (Instruction.defs ins));
        incr pos
      in
      List.iter note_instr info.block.Basic_block.body;
      note_instr (Basic_block.terminator_instruction info.block);
      let block_end = !pos - 1 in
      bitset_iter (fun v -> note v block_end) info.live_out)
    infos;
  let result = ref [] in
  for vreg = n - 1 downto 0 do
    if hi.(vreg) >= 0 then
      result := { vreg; start_pos = lo.(vreg); end_pos = hi.(vreg) } :: !result
  done;
  List.sort
    (fun a b ->
      match Int.compare a.start_pos b.start_pos with
      | 0 -> Int.compare a.vreg b.vreg
      | c -> c)
    !result

(* Peak number of simultaneously live intervals. *)
let max_pressure ivals =
  let events = ref [] in
  List.iter
    (fun i ->
      events := (i.start_pos, 1) :: (i.end_pos + 1, -1) :: !events)
    ivals;
  let sorted = List.sort compare !events in
  let cur = ref 0 and peak = ref 0 in
  List.iter
    (fun (_, d) ->
      cur := !cur + d;
      peak := max !peak !cur)
    sorted;
  !peak

(* ---- linear scan ---- *)

type assignment = Phys of int | Slot of int

let allocate ~budget ivals =
  let assignment = Hashtbl.create 64 in
  let free = Array.make budget true in
  let lowest_free () =
    let rec go i = if i >= budget then None else if free.(i) then Some i else go (i + 1) in
    go 0
  in
  (* Active intervals sorted by increasing end. *)
  let active = ref [] in
  let next_slot = ref 0 in
  let spill_to_slot iv =
    Hashtbl.replace assignment iv.vreg (Slot !next_slot);
    incr next_slot
  in
  let expire current =
    let keep, gone =
      List.partition (fun (iv, _) -> iv.end_pos >= current.start_pos) !active
    in
    List.iter (fun (_, reg) -> free.(reg) <- true) gone;
    active := keep
  in
  let insert_active iv reg =
    let rec go = function
      | [] -> [ (iv, reg) ]
      | (iv', _) :: _ as rest when iv'.end_pos > iv.end_pos -> (iv, reg) :: rest
      | entry :: rest -> entry :: go rest
    in
    active := go !active
  in
  List.iter
    (fun iv ->
      expire iv;
      match lowest_free () with
      | Some reg ->
          free.(reg) <- false;
          Hashtbl.replace assignment iv.vreg (Phys reg);
          insert_active iv reg
      | None -> (
          (* Spill the active interval that ends last, or this one. *)
          match List.rev !active with
          | (victim, victim_reg) :: _ when victim.end_pos > iv.end_pos ->
              spill_to_slot victim;
              Hashtbl.replace assignment iv.vreg (Phys victim_reg);
              active := List.filter (fun (i, _) -> i.vreg <> victim.vreg) !active;
              insert_active iv victim_reg
          | _ -> spill_to_slot iv))
    ivals;
  (assignment, !next_slot)

(* ---- rewrite ---- *)

let run (gpu : Gat_arch.Gpu.t) (p : Program.t) =
  let budget = max 1 (gpu.Gat_arch.Gpu.regs_per_thread - scratch_count - 1) in
  let ivals = intervals p in
  let pressure = max_pressure ivals in
  let assignment, n_slots = allocate ~budget ivals in
  let scratch k = Register.gpr (budget + k) in
  let frame_ptr = Register.gpr (budget + scratch_count) in
  let max_phys = ref (-1) in
  let scratch_used = ref 0 in
  let spill_loads = ref 0 and spill_stores = ref 0 in
  let assign_of (r : Register.t) =
    match Hashtbl.find_opt assignment r.Register.id with
    | Some a -> a
    | None -> Phys 0 (* unreferenced register: arbitrary *)
  in
  let local_addr slot =
    Operand.Addr { space = Operand.Local; base = frame_ptr; offset = 4 * slot }
  in
  let map_pred (r : Register.t) = Register.pred (r.Register.id mod pred_file) in
  let rewrite_instruction ins =
    (* Map spilled uses to scratch registers (loads first), then map the
       def (store after). *)
    let before = ref [] and after = ref [] in
    let use_map = Hashtbl.create 4 in
    let next_scratch = ref 0 in
    let map_use (r : Register.t) =
      if r.Register.cls = Register.Pred then map_pred r
      else
        match assign_of r with
        | Phys k ->
            max_phys := max !max_phys k;
            Register.gpr k
        | Slot s -> (
            match Hashtbl.find_opt use_map r.Register.id with
            | Some sc -> sc
            | None ->
                let sc = scratch !next_scratch in
                scratch_used := max !scratch_used (!next_scratch + 1);
                incr next_scratch;
                before := Instruction.make Opcode.LDL ~dst:sc [ local_addr s ] :: !before;
                incr spill_loads;
                Hashtbl.replace use_map r.Register.id sc;
                sc)
    in
    let map_operand (o : Operand.t) =
      match o with
      | Operand.Reg r -> Operand.Reg (map_use r)
      | Operand.Addr a -> Operand.Addr { a with Operand.base = map_use a.Operand.base }
      | Operand.Imm _ | Operand.FImm _ | Operand.Special _ -> o
    in
    let srcs = List.map map_operand ins.Instruction.srcs in
    let pred =
      Option.map
        (fun (pr : Instruction.predicate) ->
          { pr with Instruction.reg = map_pred pr.Instruction.reg })
        ins.Instruction.pred
    in
    let dst =
      match ins.Instruction.dst with
      | None -> None
      | Some r when r.Register.cls = Register.Pred -> Some (map_pred r)
      | Some r -> (
          match assign_of r with
          | Phys k ->
              max_phys := max !max_phys k;
              Some (Register.gpr k)
          | Slot s ->
              let sc = scratch 0 in
              scratch_used := max !scratch_used 1;
              after :=
                Instruction.make Opcode.STL [ local_addr s; Operand.Reg sc ]
                :: !after;
              incr spill_stores;
              Some sc)
    in
    List.rev !before
    @ [ { ins with Instruction.srcs; pred; dst } ]
    @ List.rev !after
  in
  (* When nothing spilled, every assignment is [Phys]: rewriting is a
     pure register rename, with none of the scratch/use-map machinery
     (which allocates a hashtable per instruction). *)
  let rewrite_instruction_nospill ins =
    let map_reg (r : Register.t) =
      if r.Register.cls = Register.Pred then map_pred r
      else
        match assign_of r with
        | Phys k ->
            max_phys := max !max_phys k;
            Register.gpr k
        | Slot _ -> assert false
    in
    let map_operand (o : Operand.t) =
      match o with
      | Operand.Reg r -> Operand.Reg (map_reg r)
      | Operand.Addr a ->
          Operand.Addr { a with Operand.base = map_reg a.Operand.base }
      | Operand.Imm _ | Operand.FImm _ | Operand.Special _ -> o
    in
    let srcs = List.map map_operand ins.Instruction.srcs in
    let pred =
      Option.map
        (fun (pr : Instruction.predicate) ->
          { pr with Instruction.reg = map_pred pr.Instruction.reg })
        ins.Instruction.pred
    in
    let dst = Option.map map_reg ins.Instruction.dst in
    { ins with Instruction.srcs; pred; dst }
  in
  let rewrite_block (b : Basic_block.t) =
    let body =
      if n_slots = 0 then
        List.map rewrite_instruction_nospill b.Basic_block.body
      else List.concat_map rewrite_instruction b.Basic_block.body
    in
    let term =
      match b.Basic_block.term with
      | Basic_block.Cond_branch { pred; if_true; if_false } ->
          Basic_block.Cond_branch
            {
              pred = { pred with Instruction.reg = map_pred pred.Instruction.reg };
              if_true;
              if_false;
            }
      | (Basic_block.Jump _ | Basic_block.Exit) as t -> t
    in
    Basic_block.make ~weight:b.Basic_block.weight
      ~active_frac:b.Basic_block.active_frac b.Basic_block.label body term
  in
  let blocks = List.map rewrite_block p.Program.blocks in
  (* Initialize the frame pointer at entry when spilling happened. *)
  let blocks =
    if n_slots = 0 then blocks
    else
      match blocks with
      | entry :: rest ->
          let init = Instruction.make Opcode.MOV ~dst:frame_ptr [ Operand.Imm 0 ] in
          Basic_block.make ~weight:entry.Basic_block.weight
            ~active_frac:entry.Basic_block.active_frac entry.Basic_block.label
            (init :: entry.Basic_block.body)
            entry.Basic_block.term
          :: rest
      | [] -> blocks
  in
  let overhead = !scratch_used + (if n_slots > 0 then 1 else 0) in
  let regs_used = !max_phys + 1 + overhead + abi_reserved in
  let program =
    Program.make ~name:p.Program.name ~target:p.Program.target
      ~regs_per_thread:regs_used ~smem_static:p.Program.smem_static
      ~smem_dynamic:p.Program.smem_dynamic blocks
  in
  ( program,
    {
      regs_used;
      spilled_values = n_slots;
      spill_loads = !spill_loads;
      spill_stores = !spill_stores;
      max_pressure = pressure;
    } )
