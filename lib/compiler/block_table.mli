(** Flat per-block static summary of a compiled variant.

    Everything the simulator's hot loop needs that does not depend on
    the problem size is derived from linked structures exactly once per
    compile — per-block issue cycles, global-load and barrier counts,
    per-category static instruction mixes, register-operand sequences,
    pre-resolved memory transaction/latency factors, and the resident
    occupancy — and stored in arrays indexed by block layout order.
    {!Gat_sim.Engine.run} then reduces each simulation to array loops
    over this table, with no list traversal, no [assoc] scans and no
    per-instruction allocation.

    The table is built inside {!Driver.compile}, so the one-compile-
    per-point sharing of the sweep engine (and {!Gat_tuner}'s compile
    cache) amortizes it across every input size a variant is simulated
    at.

    Layout invariant: index [i] corresponds to the [i]-th block of
    [program.blocks]; [labels], [index] and every per-block array agree
    on that numbering.  The floating-point contents replicate the exact
    folds of the legacy per-run computation (terminator-first issue
    cost, body-then-terminator operand order), so an engine that
    replays them is bit-identical to the list-based path — asserted by
    the equivalence suite in [test_sim]. *)

type t = {
  n_blocks : int;
  n_categories : int;  (** [List.length Throughput.all_categories]. *)
  labels : string array;  (** Block labels in layout order. *)
  index : (string, int) Hashtbl.t;  (** Label -> block index. *)
  residency : Gat_core.Occupancy.result;
      (** Resident blocks/warps per SM under the L1-preference
          shared-memory carveout (size-independent). *)
  issue_cycles : float array;
      (** Warp-issue cycles of one execution of each block. *)
  global_loads : float array;  (** Global-memory loads per block. *)
  barriers : float array;  (** Barrier instructions per block. *)
  instr_counts : float array;
      (** Instructions per block, terminator included. *)
  mix_counts : int array array;
      (** [mix_counts.(block).(cat)]: static instruction count of
          category [cat] (Table II order). *)
  reg_ops : float array array;
      (** [reg_ops.(block)]: register-operand count of each instruction
          in body-then-terminator order. *)
  mem_transactions : float array array;
      (** [mem_transactions.(block)]: 128-byte transaction units of each
          static access, emission order (from [mem_summary]). *)
  mem_load_latency : float array array;
      (** [mem_load_latency.(block)]: pre-resolved effective latency of
          each load access, emission order. *)
}

val build :
  gpu:Gat_arch.Gpu.t ->
  params:Params.t ->
  regs_per_thread:int ->
  mem_summary:(string * Gat_analysis.Coalescing.access list) list ->
  Gat_isa.Program.t ->
  t
(** Build the table for a compiled program.  [regs_per_thread] comes
    from the compile log; [mem_summary] is the static coalescing
    analysis keyed by block label. *)

val residency :
  Gat_arch.Gpu.t ->
  Params.t ->
  regs_per_thread:int ->
  smem_per_block:int ->
  Gat_core.Occupancy.result
(** The occupancy computation used for {!t.residency}, exposed for
    callers that need it before a table exists. *)
