(* The persistent content-addressed artifact store.

   One entry per backend-stage result, keyed by an MD5 over everything
   that shapes the stage's output — the weight-free structural digest
   of the stage's input code ({!Gat_isa.Fingerprint}), the device
   identity ({!Gat_arch.Gpu.identity}) and the stage-relevant scalar
   parameters — plus a per-stage format version.  Because the digests
   exclude the per-block execution weights (the only lowered artifact
   the launch geometry shapes), variants that differ only in TC/BC or
   in the problem size N key identically and share every stored stage
   result, across runs and across processes.  A one-instruction edit
   moves exactly the digests whose inputs changed: unchanged blocks'
   scheduled bodies still hit, so a kernel edit recompiles O(delta),
   not O(space).

   Granularity per stage:
   - [sched]  per basic-block body (the unit of the list scheduler);
   - [ra]     per scheduled program and device;
   - [coal]   per virtual program and device;
   - [bt]     per virtual program, device and the occupancy-relevant
              scalars (TC, L1 preference, staging, allocated regs);
   - [verdict] per virtual program and TC (the verifier never reads
              the device or the block count).

   Entries are MD5-sealed atomic files ([Gat_util.Sealed_file]) under
   [<cache root>/artifacts/]; corruption, truncation or a version
   mismatch reads as a miss, never as wrong data, and the stale file
   is simply overwritten by the next store.  I/O failure degrades the
   store exactly like the sweep cache: warn once, latch, keep
   computing uncached.  Chaos testing hooks in through the
   [artifact-read] / [artifact-write] fault sites.

   The hard invariant every codec here must preserve: a store-served
   result is bit-identical to a recomputed one.  All floats travel as
   [%h] hex literals (exact round-trip) and instruction streams travel
   as [Instruction.to_string] lines (exact round-trip by the ISA's
   exhaustive test). *)

open Gat_isa

let magic = "gat-artifact 1"
let dir () = Filename.concat (Gat_util.Cache_dir.root ()) "artifacts"
let lock = Mutex.create ()

(* ---- availability: enabled flag + one-shot degradation ---- *)

let enabled_flag = ref true
let set_enabled b = Gat_util.Pool.with_lock lock (fun () -> enabled_flag := b)
let enabled () = Gat_util.Pool.with_lock lock (fun () -> !enabled_flag)
let degraded_flag = ref false
let warned = ref false
let degraded () = Gat_util.Pool.with_lock lock (fun () -> !degraded_flag)

let reset_degraded () =
  Gat_util.Pool.with_lock lock (fun () ->
      degraded_flag := false;
      warned := false)

let writable () = enabled () && not (degraded ())

(* ---- observability ---- *)

type stats = { hits : int; misses : int; stores : int; degraded_writes : int }

let zero_stats = { hits = 0; misses = 0; stores = 0; degraded_writes = 0 }
let stats_ref = ref zero_stats
let stats () = Gat_util.Pool.with_lock lock (fun () -> !stats_ref)
let reset_stats () = Gat_util.Pool.with_lock lock (fun () -> stats_ref := zero_stats)
let bump f = Gat_util.Pool.with_lock lock (fun () -> stats_ref := f !stats_ref)
let m_hits = Gat_util.Metrics.counter "artifact.hits"
let m_misses = Gat_util.Metrics.counter "artifact.misses"
let m_stores = Gat_util.Metrics.counter "artifact.stores"
let m_degraded = Gat_util.Metrics.counter "artifact.degraded_writes"
let m_bytes_read = Gat_util.Metrics.counter "artifact.bytes_read"
let m_bytes_written = Gat_util.Metrics.counter "artifact.bytes_written"

let stage_names = [ "sched"; "ra"; "coal"; "bt"; "verdict" ]

let per_stage kind =
  List.map
    (fun s -> (s, Gat_util.Metrics.counter (Printf.sprintf "artifact.%s.%s" s kind)))
    stage_names

let per_hits = per_stage "hits"
let per_misses = per_stage "misses"

let hit stage =
  Gat_util.Metrics.incr m_hits;
  Gat_util.Metrics.incr (List.assoc stage per_hits);
  bump (fun s -> { s with hits = s.hits + 1 })

let miss stage =
  Gat_util.Metrics.incr m_misses;
  Gat_util.Metrics.incr (List.assoc stage per_misses);
  bump (fun s -> { s with misses = s.misses + 1 })

let stored () =
  Gat_util.Metrics.incr m_stores;
  bump (fun s -> { s with stores = s.stores + 1 })

(* First failure warns on stderr; the latch silences the rest and the
   run continues computing uncached — an unavailable store must never
   take a sweep down. *)
let degrade reason =
  Gat_util.Metrics.incr m_degraded;
  bump (fun s -> { s with degraded_writes = s.degraded_writes + 1 });
  let warn =
    Gat_util.Pool.with_lock lock (fun () ->
        degraded_flag := true;
        if !warned then false
        else begin
          warned := true;
          true
        end)
  in
  if warn then
    Printf.eprintf
      "gat: warning: artifact store unavailable (%s); continuing uncached\n%!"
      reason

(* ---- keys ---- *)

(* The per-stage format versions.  A version participates in the key,
   so bumping one orphans exactly that stage's old entries (reclaimed
   by [gat cache gc]) and leaves every other stage's results valid —
   the O(delta) story for model changes. *)
let sched_version = "sched/1"
let ra_version = "ra/1"
let coal_version = "coal/1"
let bt_version = "bt/1"
let verdict_version = "verdict/1"

let versions =
  [
    ("sched", sched_version);
    ("ra", ra_version);
    ("coal", coal_version);
    ("bt", bt_version);
    ("verdict", verdict_version);
  ]

let key_of_parts parts =
  Digest.to_hex (Digest.string (String.concat "\x00" parts))

let sched_key body = key_of_parts [ sched_version; Fingerprint.body body ]

let ra_key ~gpu scheduled =
  key_of_parts
    [ ra_version; Gat_arch.Gpu.identity gpu; Fingerprint.program scheduled ]

let coal_key ~gpu vp =
  key_of_parts [ coal_version; Gat_arch.Gpu.identity gpu; Fingerprint.program vp ]

let bt_key ~gpu ~(params : Params.t) ~regs_per_thread vp =
  key_of_parts
    [
      bt_version;
      Gat_arch.Gpu.identity gpu;
      string_of_int params.Params.threads_per_block;
      string_of_int params.Params.l1_pref_kb;
      string_of_int params.Params.staging;
      string_of_int regs_per_thread;
      Fingerprint.program vp;
    ]

let verdict_key ~threads_per_block vp =
  key_of_parts
    [ verdict_version; string_of_int threads_per_block; Fingerprint.program vp ]

(* ---- the sealed-entry envelope ---- *)

exception Bad

let path_of stage key = Filename.concat (dir ()) (stage ^ "-" ^ key ^ ".art")

type cursor = { s : string; mutable pos : int }

let line cur =
  match String.index_from_opt cur.s cur.pos '\n' with
  | None -> raise Bad
  | Some i ->
      let l = String.sub cur.s cur.pos (i - cur.pos) in
      cur.pos <- i + 1;
      l

let at_end cur = cur.pos >= String.length cur.s
let expect_line cur l = if not (String.equal (line cur) l) then raise Bad

let find_with ~stage ~version ~key parse =
  if not (enabled ()) then None
  else
    let path = path_of stage key in
    if not (Sys.file_exists path) then begin
      miss stage;
      None
    end
    else
      let read () =
        Gat_util.Fault.inject ~site:"artifact-read"
          ~key:(Filename.basename path);
        let raw = Gat_util.Sealed_file.read_raw path in
        Gat_util.Metrics.incr ~by:(String.length raw) m_bytes_read;
        match Gat_util.Sealed_file.unseal raw with
        | None -> raise Bad
        | Some payload ->
            let cur = { s = payload; pos = 0 } in
            expect_line cur magic;
            expect_line cur ("stage " ^ stage ^ "/" ^ version);
            let v = parse cur in
            if not (at_end cur) then raise Bad;
            v
      in
      (* Corrupted, truncated, foreign or stale-format content: a miss;
         the next store overwrites the file. *)
      (match read () with
      | v ->
          hit stage;
          Some v
      | exception _ ->
          miss stage;
          None)

let store_with ~stage ~version ~key emit =
  if writable () then begin
    let buf = Buffer.create 1024 in
    Buffer.add_string buf magic;
    Buffer.add_char buf '\n';
    Buffer.add_string buf ("stage " ^ stage ^ "/" ^ version ^ "\n");
    emit buf;
    Gat_util.Sealed_file.seal buf;
    let path = path_of stage key in
    match
      Gat_util.Fault.inject ~site:"artifact-write"
        ~key:(Filename.basename path);
      Gat_util.Sealed_file.publish ~path buf
    with
    | () ->
        Gat_util.Metrics.incr ~by:(Buffer.length buf) m_bytes_written;
        stored ()
    | exception Sys_error e -> degrade e
    | exception Gat_util.Fault.Injected e -> degrade e
  end

(* ---- scalar codecs ---- *)

let addf buf fmt = Printf.bprintf buf fmt

(* Token stream over one line.  Emitters never produce trailing or
   doubled spaces, so a plain split is exact. *)
type toks = { mutable rest : string list }

let toks l = { rest = String.split_on_char ' ' l }

let tok t =
  match t.rest with
  | [] -> raise Bad
  | x :: r ->
      t.rest <- r;
      x

let int_tok t =
  match int_of_string_opt (tok t) with Some n -> n | None -> raise Bad

(* [%h] literals parse back bit-exactly via the strtod hex path. *)
let float_tok t =
  match float_of_string_opt (tok t) with Some f -> f | None -> raise Bad

let done_toks t = if t.rest <> [] then raise Bad
let expect_tok t l = if not (String.equal (tok t) l) then raise Bad

let counted cur tag =
  let t = toks (line cur) in
  expect_tok t tag;
  let n = int_tok t in
  done_toks t;
  if n < 0 || n > 1_000_000 then raise Bad;
  n

let rest_after l prefix =
  let n = String.length prefix in
  if String.length l >= n && String.equal (String.sub l 0 n) prefix then
    String.sub l n (String.length l - n)
  else raise Bad

(* Labels and names travel on token lines; anything that could not be
   re-tokenized is unstorable (never produced by the lowering, which
   only emits [entry]/[BB<n>] labels — this is belt and braces). *)
let safe_text s =
  String.length s > 0
  && not (String.exists (fun c -> c = ' ' || c = '\n') s)

let instr_line cur =
  match Instruction.of_string (line cur) with
  | Some i -> i
  | None -> raise Bad

(* ---- sched: one block body ---- *)

let find_sched ~key =
  find_with ~stage:"sched" ~version:"1" ~key (fun cur ->
      let n = counted cur "body" in
      List.init n (fun _ -> instr_line cur))

let store_sched ~key body =
  store_with ~stage:"sched" ~version:"1" ~key (fun buf ->
      addf buf "body %d\n" (List.length body);
      List.iter
        (fun i ->
          Buffer.add_string buf (Instruction.to_string i);
          Buffer.add_char buf '\n')
        body)

(* ---- terminators (shared by the ra codec) ---- *)

let emit_term buf (t : Basic_block.terminator) =
  match t with
  | Basic_block.Jump l -> addf buf "term jump %s\n" l
  | Basic_block.Cond_branch { pred; if_true; if_false } ->
      addf buf "term cbr %s%s %s %s\n"
        (if pred.Instruction.negated then "!" else "")
        (Register.to_string pred.Instruction.reg)
        if_true if_false
  | Basic_block.Exit -> Buffer.add_string buf "term exit\n"

let parse_term cur =
  let t = toks (line cur) in
  expect_tok t "term";
  match tok t with
  | "jump" ->
      let l = tok t in
      done_toks t;
      Basic_block.Jump l
  | "exit" ->
      done_toks t;
      Basic_block.Exit
  | "cbr" ->
      let p = tok t in
      let negated = String.length p > 0 && p.[0] = '!' in
      let name = if negated then String.sub p 1 (String.length p - 1) else p in
      let reg =
        match Register.of_string name with Some r -> r | None -> raise Bad
      in
      let if_true = tok t in
      let if_false = tok t in
      done_toks t;
      Basic_block.Cond_branch
        { pred = { Instruction.negated; reg }; if_true; if_false }
  | _ -> raise Bad

(* ---- ra: allocated blocks + stats, weight-free ---- *)

let find_ra ~key =
  find_with ~stage:"ra" ~version:"1" ~key (fun cur ->
      let t = toks (line cur) in
      expect_tok t "stats";
      (* Token reads side-effect the stream: bind in sequence, never in
         a record literal (field evaluation order is unspecified). *)
      let regs_used = int_tok t in
      let spilled_values = int_tok t in
      let spill_loads = int_tok t in
      let spill_stores = int_tok t in
      let max_pressure = int_tok t in
      let st =
        {
          Regalloc.regs_used;
          spilled_values;
          spill_loads;
          spill_stores;
          max_pressure;
        }
      in
      done_toks t;
      let n = counted cur "blocks" in
      let blocks =
        List.init n (fun _ ->
            let t = toks (line cur) in
            expect_tok t "block";
            let label = tok t in
            let nbody = int_tok t in
            done_toks t;
            if nbody < 0 || nbody > 1_000_000 then raise Bad;
            let body = List.init nbody (fun _ -> instr_line cur) in
            let term = parse_term cur in
            Basic_block.make label body term)
      in
      (blocks, st))

let store_ra ~key (p : Program.t) (st : Regalloc.stats) =
  if List.for_all (fun b -> safe_text b.Basic_block.label) p.Program.blocks
  then
    store_with ~stage:"ra" ~version:"1" ~key (fun buf ->
        addf buf "stats %d %d %d %d %d\n" st.Regalloc.regs_used
          st.Regalloc.spilled_values st.Regalloc.spill_loads
          st.Regalloc.spill_stores st.Regalloc.max_pressure;
        addf buf "blocks %d\n" (List.length p.Program.blocks);
        List.iter
          (fun (b : Basic_block.t) ->
            addf buf "block %s %d\n" b.Basic_block.label
              (List.length b.Basic_block.body);
            List.iter
              (fun i ->
                Buffer.add_string buf (Instruction.to_string i);
                Buffer.add_char buf '\n')
              b.Basic_block.body;
            emit_term buf b.Basic_block.term)
          p.Program.blocks)

(* ---- affine codecs (shared by coal and verdict) ---- *)

let emit_coeff buf (c : Gat_analysis.Affine.coeff) =
  match c with
  | Gat_analysis.Affine.Known { k; e } -> addf buf " K %d %d" k e
  | Gat_analysis.Affine.Unknown -> Buffer.add_string buf " U"

let coeff_tok t =
  match tok t with
  | "K" ->
      let k = int_tok t in
      let e = int_tok t in
      Gat_analysis.Affine.Known { k; e }
  | "U" -> Gat_analysis.Affine.Unknown
  | _ -> raise Bad

let emit_value buf (v : Gat_analysis.Affine.value) =
  (match v.Gat_analysis.Affine.base with
  | Some c -> addf buf " C %d" c
  | None -> Buffer.add_string buf " N");
  addf buf " %d" v.Gat_analysis.Affine.mag;
  emit_coeff buf v.Gat_analysis.Affine.tid;
  emit_coeff buf v.Gat_analysis.Affine.iter

let value_tok t =
  let base =
    match tok t with
    | "C" -> Some (int_tok t)
    | "N" -> None
    | _ -> raise Bad
  in
  let mag = int_tok t in
  let tid = coeff_tok t in
  let iter = coeff_tok t in
  { Gat_analysis.Affine.base; mag; tid; iter }

let opcode_tok t =
  match Opcode.of_mnemonic (tok t) with Some o -> o | None -> raise Bad

(* ---- coal: the per-block memory summary ---- *)

let emit_access buf (a : Gat_analysis.Coalescing.access) =
  addf buf "a %d %s %d %s %s" a.Gat_analysis.Coalescing.block_index
    a.Gat_analysis.Coalescing.block_label a.Gat_analysis.Coalescing.instr_index
    (Opcode.mnemonic a.Gat_analysis.Coalescing.op)
    (match a.Gat_analysis.Coalescing.kind with `Load -> "L" | `Store -> "S");
  (match a.Gat_analysis.Coalescing.pattern with
  | Gat_analysis.Coalescing.Broadcast -> Buffer.add_string buf " B"
  | Gat_analysis.Coalescing.Stride n -> addf buf " S %d" n
  | Gat_analysis.Coalescing.Large c ->
      Buffer.add_string buf " L";
      emit_coeff buf c
  | Gat_analysis.Coalescing.Unknown -> Buffer.add_string buf " U");
  emit_coeff buf a.Gat_analysis.Coalescing.tid_stride;
  emit_coeff buf a.Gat_analysis.Coalescing.iter_stride;
  addf buf " %d %h\n" a.Gat_analysis.Coalescing.segments
    a.Gat_analysis.Coalescing.transactions

let parse_access cur =
  let t = toks (line cur) in
  expect_tok t "a";
  let block_index = int_tok t in
  let block_label = tok t in
  let instr_index = int_tok t in
  let op = opcode_tok t in
  let kind =
    match tok t with "L" -> `Load | "S" -> `Store | _ -> raise Bad
  in
  let pattern =
    match tok t with
    | "B" -> Gat_analysis.Coalescing.Broadcast
    | "S" -> Gat_analysis.Coalescing.Stride (int_tok t)
    | "L" -> Gat_analysis.Coalescing.Large (coeff_tok t)
    | "U" -> Gat_analysis.Coalescing.Unknown
    | _ -> raise Bad
  in
  let tid_stride = coeff_tok t in
  let iter_stride = coeff_tok t in
  let segments = int_tok t in
  let transactions = float_tok t in
  done_toks t;
  {
    Gat_analysis.Coalescing.block_index;
    block_label;
    instr_index;
    op;
    kind;
    pattern;
    tid_stride;
    iter_stride;
    segments;
    transactions;
  }

let find_coal ~key =
  find_with ~stage:"coal" ~version:"1" ~key (fun cur ->
      let n = counted cur "groups" in
      List.init n (fun _ ->
          let t = toks (line cur) in
          expect_tok t "group";
          let label = tok t in
          let k = int_tok t in
          done_toks t;
          if k < 0 || k > 1_000_000 then raise Bad;
          (label, List.init k (fun _ -> parse_access cur))))

let store_coal ~key summary =
  if
    List.for_all
      (fun (l, accs) ->
        safe_text l
        && List.for_all
             (fun (a : Gat_analysis.Coalescing.access) ->
               safe_text a.Gat_analysis.Coalescing.block_label)
             accs)
      summary
  then
    store_with ~stage:"coal" ~version:"1" ~key (fun buf ->
        addf buf "groups %d\n" (List.length summary);
        List.iter
          (fun (label, accs) ->
            addf buf "group %s %d\n" label (List.length accs);
            List.iter (emit_access buf) accs)
          summary)

(* ---- bt: the flat per-block simulator table ---- *)

let emit_farr buf tag arr =
  Buffer.add_string buf tag;
  Array.iter (fun f -> addf buf " %h" f) arr;
  Buffer.add_char buf '\n'

let farr_line cur tag n =
  let t = toks (line cur) in
  expect_tok t tag;
  let a = Array.init n (fun _ -> float_tok t) in
  done_toks t;
  a

let limiter_tag (l : Gat_core.Occupancy.limiter) =
  match l with
  | Gat_core.Occupancy.Warps -> "W"
  | Gat_core.Occupancy.Registers -> "R"
  | Gat_core.Occupancy.Shared_memory -> "S"
  | Gat_core.Occupancy.Illegal -> "I"

let limiter_of_tag = function
  | "W" -> Gat_core.Occupancy.Warps
  | "R" -> Gat_core.Occupancy.Registers
  | "S" -> Gat_core.Occupancy.Shared_memory
  | "I" -> Gat_core.Occupancy.Illegal
  | _ -> raise Bad

let find_bt ~key =
  find_with ~stage:"bt" ~version:"1" ~key (fun cur ->
      let t = toks (line cur) in
      expect_tok t "bt";
      let n_blocks = int_tok t in
      let n_categories = int_tok t in
      done_toks t;
      if n_blocks < 0 || n_blocks > 1_000_000 then raise Bad;
      (* A category-count drift means the throughput model changed
         under a stale [bt] version — refuse the entry rather than
         hand the simulator short rows. *)
      if n_categories <> List.length Gat_arch.Throughput.all_categories then
        raise Bad;
      let t = toks (line cur) in
      expect_tok t "labels";
      let labels = Array.init n_blocks (fun _ -> tok t) in
      done_toks t;
      let index = Hashtbl.create (max 1 n_blocks) in
      Array.iteri (fun i l -> Hashtbl.replace index l i) labels;
      let t = toks (line cur) in
      expect_tok t "residency";
      let blocks_by_warps = int_tok t in
      let blocks_by_regs = int_tok t in
      let blocks_by_smem = int_tok t in
      let active_blocks = int_tok t in
      let warps_per_block = int_tok t in
      let active_warps = int_tok t in
      let occupancy = float_tok t in
      let limiter = limiter_of_tag (tok t) in
      let residency =
        {
          Gat_core.Occupancy.blocks_by_warps;
          blocks_by_regs;
          blocks_by_smem;
          active_blocks;
          warps_per_block;
          active_warps;
          occupancy;
          limiter;
        }
      in
      done_toks t;
      let issue_cycles = farr_line cur "issue" n_blocks in
      let global_loads = farr_line cur "gloads" n_blocks in
      let barriers = farr_line cur "barriers" n_blocks in
      let instr_counts = farr_line cur "icounts" n_blocks in
      let mix_counts =
        Array.init n_blocks (fun _ ->
            let t = toks (line cur) in
            expect_tok t "mix";
            let row = Array.init n_categories (fun _ -> int_tok t) in
            done_toks t;
            row)
      in
      let var_rows tag =
        Array.init n_blocks (fun _ ->
            let t = toks (line cur) in
            expect_tok t tag;
            let k = int_tok t in
            if k < 0 || k > 1_000_000 then raise Bad;
            let row = Array.init k (fun _ -> float_tok t) in
            done_toks t;
            row)
      in
      let reg_ops = var_rows "regops" in
      let mem_transactions = var_rows "memtx" in
      let mem_load_latency = var_rows "memlat" in
      {
        Block_table.n_blocks;
        n_categories;
        labels;
        index;
        residency;
        issue_cycles;
        global_loads;
        barriers;
        instr_counts;
        mix_counts;
        reg_ops;
        mem_transactions;
        mem_load_latency;
      })

let store_bt ~key (bt : Block_table.t) =
  if Array.for_all safe_text bt.Block_table.labels then
    store_with ~stage:"bt" ~version:"1" ~key (fun buf ->
        addf buf "bt %d %d\n" bt.Block_table.n_blocks
          bt.Block_table.n_categories;
        Buffer.add_string buf "labels";
        Array.iter (fun l -> addf buf " %s" l) bt.Block_table.labels;
        Buffer.add_char buf '\n';
        let r = bt.Block_table.residency in
        addf buf "residency %d %d %d %d %d %d %h %s\n"
          r.Gat_core.Occupancy.blocks_by_warps r.Gat_core.Occupancy.blocks_by_regs
          r.Gat_core.Occupancy.blocks_by_smem r.Gat_core.Occupancy.active_blocks
          r.Gat_core.Occupancy.warps_per_block r.Gat_core.Occupancy.active_warps
          r.Gat_core.Occupancy.occupancy
          (limiter_tag r.Gat_core.Occupancy.limiter);
        emit_farr buf "issue" bt.Block_table.issue_cycles;
        emit_farr buf "gloads" bt.Block_table.global_loads;
        emit_farr buf "barriers" bt.Block_table.barriers;
        emit_farr buf "icounts" bt.Block_table.instr_counts;
        Array.iter
          (fun row ->
            Buffer.add_string buf "mix";
            Array.iter (fun c -> addf buf " %d" c) row;
            Buffer.add_char buf '\n')
          bt.Block_table.mix_counts;
        let var_rows tag rows =
          Array.iter
            (fun row ->
              addf buf "%s %d" tag (Array.length row);
              Array.iter (fun f -> addf buf " %h" f) row;
              Buffer.add_char buf '\n')
            rows
        in
        var_rows "regops" bt.Block_table.reg_ops;
        var_rows "memtx" bt.Block_table.mem_transactions;
        var_rows "memlat" bt.Block_table.mem_load_latency)

(* ---- verdict: the full safety report ---- *)

let emit_race_access buf (a : Gat_analysis.Races.access) =
  addf buf "a %d %s %d %s %d %d" a.Gat_analysis.Races.block_index
    a.Gat_analysis.Races.block_label a.Gat_analysis.Races.instr_index
    (Opcode.mnemonic a.Gat_analysis.Races.op)
    (if a.Gat_analysis.Races.predicated then 1 else 0)
    (match a.Gat_analysis.Races.stored with Some _ -> 1 | None -> 0);
  emit_value buf a.Gat_analysis.Races.address;
  (match a.Gat_analysis.Races.stored with
  | Some v -> emit_value buf v
  | None -> ());
  Buffer.add_char buf '\n'

let parse_race_access cur =
  let t = toks (line cur) in
  expect_tok t "a";
  let block_index = int_tok t in
  let block_label = tok t in
  let instr_index = int_tok t in
  let op = opcode_tok t in
  let predicated =
    match int_tok t with 0 -> false | 1 -> true | _ -> raise Bad
  in
  let has_stored =
    match int_tok t with 0 -> false | 1 -> true | _ -> raise Bad
  in
  let address = value_tok t in
  let stored = if has_stored then Some (value_tok t) else None in
  done_toks t;
  {
    Gat_analysis.Races.block_index;
    block_label;
    instr_index;
    op;
    address;
    stored;
    predicated;
  }

let find_verdict ~key =
  find_with ~stage:"verdict" ~version:"1" ~key (fun cur ->
      let program_name = rest_after (line cur) "name " in
      let t = toks (line cur) in
      expect_tok t "report";
      let threads_per_block = int_tok t in
      let barrier_count = int_tok t in
      let interval_count = int_tok t in
      let shared_accesses = int_tok t in
      done_toks t;
      let nd = counted cur "divergent" in
      let divergent_barriers =
        List.init nd (fun _ ->
            let t = toks (line cur) in
            expect_tok t "d";
            let block_index = int_tok t in
            let block_label = tok t in
            let instr_index = int_tok t in
            let nb = int_tok t in
            done_toks t;
            if nb < 0 || nb > 1_000_000 then raise Bad;
            let t = toks (line cur) in
            expect_tok t "bi";
            let branch_indices = List.init nb (fun _ -> int_tok t) in
            done_toks t;
            let t = toks (line cur) in
            expect_tok t "bl";
            let branch_labels = List.init nb (fun _ -> tok t) in
            done_toks t;
            {
              Gat_analysis.Barrier_safety.block_index;
              block_label;
              instr_index;
              branch_indices;
              branch_labels;
            })
      in
      let nr = counted cur "races" in
      let races =
        List.init nr (fun _ ->
            let kind =
              match rest_after (line cur) "r " with
              | "WW" -> Gat_analysis.Races.Write_write
              | "RW" -> Gat_analysis.Races.Read_write
              | _ -> raise Bad
            in
            let first = parse_race_access cur in
            let second = parse_race_access cur in
            let witness =
              let l = line cur in
              match String.split_on_char ' ' l with
              | "w" :: "E" :: i :: j :: [] -> (
                  match (int_of_string_opt i, int_of_string_opt j) with
                  | Some i, Some j -> Gat_analysis.Races.Exact (i, j)
                  | _ -> raise Bad)
              | _ -> Gat_analysis.Races.May (rest_after l "w M ")
            in
            { Gat_analysis.Races.first; second; kind; witness })
      in
      {
        Gat_analysis.Verify.program_name;
        threads_per_block;
        barrier_count;
        interval_count;
        shared_accesses;
        divergent_barriers;
        races;
      })

let store_verdict ~key (r : Gat_analysis.Verify.report) =
  let finding_safe (f : Gat_analysis.Barrier_safety.finding) =
    safe_text f.Gat_analysis.Barrier_safety.block_label
    && List.for_all safe_text f.Gat_analysis.Barrier_safety.branch_labels
  in
  let access_safe (a : Gat_analysis.Races.access) =
    safe_text a.Gat_analysis.Races.block_label
  in
  let race_safe (f : Gat_analysis.Races.finding) =
    access_safe f.Gat_analysis.Races.first
    && access_safe f.Gat_analysis.Races.second
    &&
    match f.Gat_analysis.Races.witness with
    | Gat_analysis.Races.Exact _ -> true
    | Gat_analysis.Races.May m -> not (String.contains m '\n')
  in
  if
    (not (String.contains r.Gat_analysis.Verify.program_name '\n'))
    && List.for_all finding_safe r.Gat_analysis.Verify.divergent_barriers
    && List.for_all race_safe r.Gat_analysis.Verify.races
  then
    store_with ~stage:"verdict" ~version:"1" ~key (fun buf ->
        addf buf "name %s\n" r.Gat_analysis.Verify.program_name;
        addf buf "report %d %d %d %d\n" r.Gat_analysis.Verify.threads_per_block
          r.Gat_analysis.Verify.barrier_count
          r.Gat_analysis.Verify.interval_count
          r.Gat_analysis.Verify.shared_accesses;
        addf buf "divergent %d\n"
          (List.length r.Gat_analysis.Verify.divergent_barriers);
        List.iter
          (fun (f : Gat_analysis.Barrier_safety.finding) ->
            addf buf "d %d %s %d %d\n" f.Gat_analysis.Barrier_safety.block_index
              f.Gat_analysis.Barrier_safety.block_label
              f.Gat_analysis.Barrier_safety.instr_index
              (List.length f.Gat_analysis.Barrier_safety.branch_indices);
            Buffer.add_string buf "bi";
            List.iter
              (fun i -> addf buf " %d" i)
              f.Gat_analysis.Barrier_safety.branch_indices;
            Buffer.add_char buf '\n';
            Buffer.add_string buf "bl";
            List.iter
              (fun l -> addf buf " %s" l)
              f.Gat_analysis.Barrier_safety.branch_labels;
            Buffer.add_char buf '\n')
          r.Gat_analysis.Verify.divergent_barriers;
        addf buf "races %d\n" (List.length r.Gat_analysis.Verify.races);
        List.iter
          (fun (f : Gat_analysis.Races.finding) ->
            addf buf "r %s\n"
              (match f.Gat_analysis.Races.kind with
              | Gat_analysis.Races.Write_write -> "WW"
              | Gat_analysis.Races.Read_write -> "RW");
            emit_race_access buf f.Gat_analysis.Races.first;
            emit_race_access buf f.Gat_analysis.Races.second;
            match f.Gat_analysis.Races.witness with
            | Gat_analysis.Races.Exact (i, j) -> addf buf "w E %d %d\n" i j
            | Gat_analysis.Races.May m -> addf buf "w M %s\n" m)
          r.Gat_analysis.Verify.races)

(* ---- maintenance (consumed by [Gat_tuner.Artifact_store]) ---- *)

let entries () =
  let d = dir () in
  match Sys.readdir d with
  | exception Sys_error _ -> []
  | names ->
      Array.to_list names
      |> List.filter (fun n -> Filename.check_suffix n ".art")
      |> List.sort String.compare
      |> List.map (Filename.concat d)

let disk_usage () =
  List.fold_left
    (fun (files, bytes) path ->
      match In_channel.with_open_bin path In_channel.length with
      | len -> (files + 1, bytes + Int64.to_int len)
      | exception Sys_error _ -> (files, bytes))
    (0, 0) (entries ())

let clear () =
  List.fold_left
    (fun removed path ->
      match Sys.remove path with
      | () -> removed + 1
      | exception Sys_error _ -> removed)
    0 (entries ())
