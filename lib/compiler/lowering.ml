open Gat_ir
open Gat_isa

type ctx = {
  kernel : Kernel.t;
  params : Params.t;
  (* block builder *)
  mutable blocks_rev : Basic_block.t list;
  mutable label : string;
  mutable instrs_rev : Instruction.t list;
  mutable weight : Weight.t;
  mutable active : float;
  mutable next_label : int;
  mutable next_gpr : int;
  mutable next_pred : int;
  (* IR environment *)
  var_regs : (string, Register.t) Hashtbl.t;
  var_types : (string, Dtype.t) Hashtbl.t;
  var_offsets : (string, int) Hashtbl.t;  (* unroll-copy shifts *)
  tainted_vars : (string, unit) Hashtbl.t;  (* thread-dependent scalars *)
  defs : (string, Expr.t) Hashtbl.t;  (* inlined straight-line defs *)
  array_bases : (string, Register.t) Hashtbl.t;
  mutable n_reg : Register.t;
  mutable smem_dynamic : int;
  (* profile construction *)
  total_warps : int;
  warps_per_block : int;
  mutable parallel_var : string option;
  mutable work_items_fn : int -> int;
  mutable agg_fn : int -> Profile.agg;
  mutable count_rules : (string * (int -> Profile.agg)) list;  (* reversed *)
}

(* ---- builder primitives ---- *)

let fresh_gpr ctx =
  let r = Register.gpr ctx.next_gpr in
  ctx.next_gpr <- ctx.next_gpr + 1;
  r

let fresh_pred ctx =
  let p = Register.pred ctx.next_pred in
  ctx.next_pred <- ctx.next_pred + 1;
  p

let emit ctx ins = ctx.instrs_rev <- ins :: ctx.instrs_rev

let emit1 ctx ?pred ?cmp op dst srcs =
  emit ctx (Instruction.make ?pred ?cmp ~dst op srcs)

let cmp_of_ir (op : Expr.cmpop) : Instruction.cmp =
  match op with
  | Expr.Eq -> Instruction.EQ
  | Expr.Ne -> Instruction.NE
  | Expr.Lt -> Instruction.LT
  | Expr.Le -> Instruction.LE
  | Expr.Gt -> Instruction.GT
  | Expr.Ge -> Instruction.GE

let new_label ctx =
  let l = Printf.sprintf "BB%d" ctx.next_label in
  ctx.next_label <- ctx.next_label + 1;
  l

let end_block ctx term =
  let block =
    Basic_block.make ~weight:ctx.weight ~active_frac:ctx.active ctx.label
      (List.rev ctx.instrs_rev) term
  in
  ctx.blocks_rev <- block :: ctx.blocks_rev;
  ctx.instrs_rev <- []

let start_block ctx label ~weight ~active ~agg =
  ctx.label <- label;
  ctx.weight <- weight;
  ctx.active <- active;
  ctx.agg_fn <- agg;
  ctx.count_rules <- (label, agg) :: ctx.count_rules

let memo1 f =
  let cache = Hashtbl.create 8 in
  fun n ->
    match Hashtbl.find_opt cache n with
    | Some v -> v
    | None ->
        let v = f n in
        Hashtbl.replace cache n v;
        v

(* ---- IR typing, taint and straight-line definitions ---- *)

let type_env ctx =
  Hashtbl.fold (fun v ty acc -> (v, ty) :: acc) ctx.var_types []

let type_of ctx e = Typecheck.expr ctx.kernel (type_env ctx) e

let expr_tainted ctx e =
  List.exists (Hashtbl.mem ctx.tainted_vars) (Expr.free_vars e)

(* Inline current defs into an expression: the result mentions only
   variables with no recorded definition (loop indices, in practice). *)
let inline_defs ctx e =
  Expr.map_vars
    (fun v ->
      match Hashtbl.find_opt ctx.defs v with
      | Some d -> d
      | None -> Expr.Var v)
    e

(* ---- registers for IR variables ---- *)

let var_reg ctx v ty =
  match Hashtbl.find_opt ctx.var_regs v with
  | Some r -> r
  | None ->
      let r = fresh_gpr ctx in
      Hashtbl.replace ctx.var_regs v r;
      Hashtbl.replace ctx.var_types v ty;
      r

(* Memory coalescing is no longer estimated here by numeric sampling:
   the static affine pass ([Gat_analysis.Coalescing]) derives per-access
   transaction counts from the emitted code itself; see [Driver]. *)

(* ---- expression code generation ---- *)

let as_reg ctx (operand : Operand.t) =
  match operand with
  | Operand.Reg r -> r
  | Operand.Imm _ | Operand.FImm _ | Operand.Special _ ->
      let r = fresh_gpr ctx in
      emit1 ctx Opcode.MOV r [ operand ];
      r
  | Operand.Addr _ -> invalid_arg "Lowering.as_reg: address operand"

let dst_or_fresh ctx dst = match dst with Some r -> r | None -> fresh_gpr ctx

let elem_size ctx a = Dtype.size_bytes (Kernel.find_array ctx.kernel a).Kernel.elem

let rec gen_expr ?dst ctx (e : Expr.t) : Operand.t =
  match e with
  | Expr.Int i -> finish_leaf ctx dst (Operand.Imm i)
  | Expr.Float f -> finish_leaf ctx dst (Operand.FImm f)
  | Expr.Size -> finish_leaf ctx dst (Operand.Reg ctx.n_reg)
  | Expr.Var v -> (
      let r =
        match Hashtbl.find_opt ctx.var_regs v with
        | Some r -> r
        | None -> invalid_arg ("Lowering: undefined scalar " ^ v)
      in
      let offset = Option.value ~default:0 (Hashtbl.find_opt ctx.var_offsets v) in
      if offset = 0 then finish_leaf ctx dst (Operand.Reg r)
      else begin
        let t = dst_or_fresh ctx dst in
        emit1 ctx Opcode.IADD t [ Operand.Reg r; Operand.Imm offset ];
        Operand.Reg t
      end)
  | Expr.Read (a, idxs) ->
      let addr = gen_address ctx a idxs in
      let t = dst_or_fresh ctx dst in
      emit1 ctx Opcode.LDG t [ addr ];
      Operand.Reg t
  | Expr.Bin (op, x, y) -> gen_bin ?dst ctx op x y
  | Expr.Cmp (_, _, _) ->
      let p = gen_cond ctx e in
      finish_leaf ctx dst (Operand.Reg p)
  | Expr.Un (op, x) -> gen_un ?dst ctx op x
  | Expr.Select (c, x, y) ->
      let p = gen_cond ctx c in
      let xo = gen_expr ctx x and yo = gen_expr ctx y in
      let t = dst_or_fresh ctx dst in
      emit1 ctx Opcode.SEL t [ xo; yo; Operand.Reg p ];
      Operand.Reg t

and finish_leaf ctx dst operand =
  match dst with
  | None -> operand
  | Some r ->
      emit1 ctx Opcode.MOV r [ operand ];
      Operand.Reg r

(* Address of a[idxs]: flatten row-major, scale by element size, add the
   array's base register. *)
and gen_address ctx a idxs =
  let base =
    match Hashtbl.find_opt ctx.array_bases a with
    | Some r -> r
    | None -> invalid_arg ("Lowering: unknown array " ^ a)
  in
  let size = elem_size ctx a in
  match idxs with
  | [ i ] -> (
      match gen_expr ctx i with
      | Operand.Imm k -> Operand.Addr { space = Operand.Global; base; offset = k * size }
      | io ->
          let t = fresh_gpr ctx in
          emit1 ctx Opcode.IMAD t [ io; Operand.Imm size; Operand.Reg base ];
          Operand.Addr { space = Operand.Global; base = t; offset = 0 })
  | [ i; j ] ->
      let io = gen_expr ctx i and jo = gen_expr ctx j in
      let flat = fresh_gpr ctx in
      emit1 ctx Opcode.IMAD flat [ io; Operand.Reg ctx.n_reg; jo ];
      let t = fresh_gpr ctx in
      emit1 ctx Opcode.IMAD t
        [ Operand.Reg flat; Operand.Imm size; Operand.Reg base ];
      Operand.Addr { space = Operand.Global; base = t; offset = 0 }
  | [ i; j; k ] ->
      let io = gen_expr ctx i and jo = gen_expr ctx j in
      let ko = gen_expr ctx k in
      let plane = fresh_gpr ctx in
      emit1 ctx Opcode.IMAD plane [ io; Operand.Reg ctx.n_reg; jo ];
      let flat = fresh_gpr ctx in
      emit1 ctx Opcode.IMAD flat
        [ Operand.Reg plane; Operand.Reg ctx.n_reg; ko ];
      let t = fresh_gpr ctx in
      emit1 ctx Opcode.IMAD t
        [ Operand.Reg flat; Operand.Imm size; Operand.Reg base ];
      Operand.Addr { space = Operand.Global; base = t; offset = 0 }
  | _ -> invalid_arg ("Lowering: bad rank for array " ^ a)

and gen_bin ?dst ctx op x y =
  let ty = type_of ctx (Expr.Bin (op, x, y)) in
  let fast = ctx.params.Params.fast_math in
  let t = dst_or_fresh ctx dst in
  if Dtype.is_float ty then begin
    let is64 = ty = Dtype.F64 in
    let fadd = if is64 then Opcode.DADD else Opcode.FADD in
    let fmul = if is64 then Opcode.DMUL else Opcode.FMUL in
    let ffma = if is64 then Opcode.DFMA else Opcode.FFMA in
    match op with
    | Expr.Add -> (
        (* Fuse (a*b) + c into FFMA where possible. *)
        match (x, y) with
        | Expr.Bin (Expr.Mul, a, b), c | c, Expr.Bin (Expr.Mul, a, b) ->
            let ao = gen_expr ctx a and bo = gen_expr ctx b in
            let co = gen_expr ctx c in
            emit1 ctx ffma t [ ao; bo; co ];
            Operand.Reg t
        | _ ->
            let xo = gen_expr ctx x and yo = gen_expr ctx y in
            emit1 ctx fadd t [ xo; yo ];
            Operand.Reg t)
    | Expr.Sub ->
        (* x - y as y*(-1) + x, keeping the FMA pipeline busy. *)
        let xo = gen_expr ctx x and yo = gen_expr ctx y in
        emit1 ctx ffma t [ yo; Operand.FImm (-1.0); xo ];
        Operand.Reg t
    | Expr.Mul ->
        let xo = gen_expr ctx x and yo = gen_expr ctx y in
        emit1 ctx fmul t [ xo; yo ];
        Operand.Reg t
    | Expr.Div ->
        let xo = gen_expr ctx x and yo = gen_expr ctx y in
        let yr = as_reg ctx yo in
        let r0 = fresh_gpr ctx in
        emit1 ctx Opcode.MUFU_RCP r0 [ Operand.Reg yr ];
        if fast then begin
          emit1 ctx fmul t [ xo; Operand.Reg r0 ];
          Operand.Reg t
        end
        else begin
          (* One Newton step: r1 = r0*(2 - y*r0), then x*r1. *)
          let e0 = fresh_gpr ctx in
          emit1 ctx ffma e0 [ Operand.Reg yr; Operand.Reg r0; Operand.FImm (-1.0) ];
          let r1 = fresh_gpr ctx in
          emit1 ctx ffma r1 [ Operand.Reg e0; Operand.Reg r0; Operand.Reg r0 ];
          emit1 ctx fmul t [ xo; Operand.Reg r1 ];
          Operand.Reg t
        end
    | Expr.Min | Expr.Max ->
        (* Third operand selects min (0) or max (1), as SASS's !PT. *)
        let xo = gen_expr ctx x and yo = gen_expr ctx y in
        let sel = if op = Expr.Max then 1 else 0 in
        emit1 ctx Opcode.FMNMX t [ xo; yo; Operand.Imm sel ];
        Operand.Reg t
  end
  else begin
    match op with
    | Expr.Add -> (
        match (x, y) with
        | Expr.Bin (Expr.Mul, a, b), c | c, Expr.Bin (Expr.Mul, a, b) ->
            let ao = gen_expr ctx a and bo = gen_expr ctx b in
            let co = gen_expr ctx c in
            emit1 ctx Opcode.IMAD t [ ao; bo; co ];
            Operand.Reg t
        | _ ->
            let xo = gen_expr ctx x and yo = gen_expr ctx y in
            emit1 ctx Opcode.IADD t [ xo; yo ];
            Operand.Reg t)
    | Expr.Sub ->
        let xo = gen_expr ctx x and yo = gen_expr ctx y in
        (* x - y = y*(-1) + x *)
        emit1 ctx Opcode.IMAD t [ yo; Operand.Imm (-1); xo ];
        Operand.Reg t
    | Expr.Mul ->
        let xo = gen_expr ctx x and yo = gen_expr ctx y in
        emit1 ctx Opcode.IMUL t [ xo; yo ];
        Operand.Reg t
    | Expr.Div ->
        (* Integer division by float reciprocal, as real GPUs do; the
           epsilon nudge keeps exact quotients exact under truncation
           (the hardware sequence has an equivalent fixup step). *)
        let xo = gen_expr ctx x and yo = gen_expr ctx y in
        let fx = fresh_gpr ctx and fy = fresh_gpr ctx in
        emit1 ctx Opcode.I2F fx [ xo ];
        emit1 ctx Opcode.I2F fy [ yo ];
        let r = fresh_gpr ctx in
        emit1 ctx Opcode.MUFU_RCP r [ Operand.Reg fy ];
        let q = fresh_gpr ctx in
        emit1 ctx Opcode.FMUL q [ Operand.Reg fx; Operand.Reg r ];
        let qe = fresh_gpr ctx in
        emit1 ctx Opcode.FADD qe [ Operand.Reg q; Operand.FImm 1e-6 ];
        emit1 ctx Opcode.F2I t [ Operand.Reg qe ];
        Operand.Reg t
    | Expr.Min | Expr.Max ->
        let xo = gen_expr ctx x and yo = gen_expr ctx y in
        let sel = if op = Expr.Max then 1 else 0 in
        emit1 ctx Opcode.IMNMX t [ xo; yo; Operand.Imm sel ];
        Operand.Reg t
  end

and gen_un ?dst ctx op x =
  let ty = type_of ctx x in
  let fast = ctx.params.Params.fast_math in
  let t = dst_or_fresh ctx dst in
  let xo = gen_expr ctx x in
  match op with
  | Expr.Neg ->
      if Dtype.is_float ty then
        emit1 ctx Opcode.FMUL t [ xo; Operand.FImm (-1.0) ]
      else emit1 ctx Opcode.IMAD t [ xo; Operand.Imm (-1); Operand.Imm 0 ];
      Operand.Reg t
  | Expr.Abs ->
      if Dtype.is_float ty then begin
        let neg = fresh_gpr ctx in
        emit1 ctx Opcode.FMUL neg [ xo; Operand.FImm (-1.0) ];
        emit1 ctx Opcode.FMNMX t [ xo; Operand.Reg neg; Operand.Imm 1 ]
      end
      else begin
        let neg = fresh_gpr ctx in
        emit1 ctx Opcode.IMAD neg [ xo; Operand.Imm (-1); Operand.Imm 0 ];
        emit1 ctx Opcode.IMNMX t [ xo; Operand.Reg neg; Operand.Imm 1 ]
      end;
      Operand.Reg t
  | Expr.Sqrt ->
      if fast then emit1 ctx Opcode.MUFU_SQRT t [ xo ]
      else begin
        (* Residual-based refinement: e = r0^2 - x (zero when the seed
           is exact), t = r0 - e/2. *)
        let r0 = fresh_gpr ctx in
        emit1 ctx Opcode.MUFU_SQRT r0 [ xo ];
        let nx = fresh_gpr ctx in
        emit1 ctx Opcode.FMUL nx [ xo; Operand.FImm (-1.0) ];
        let e = fresh_gpr ctx in
        emit1 ctx Opcode.FFMA e [ Operand.Reg r0; Operand.Reg r0; Operand.Reg nx ];
        emit1 ctx Opcode.FFMA t [ Operand.Reg e; Operand.FImm (-0.5); Operand.Reg r0 ]
      end;
      Operand.Reg t
  | Expr.Recip ->
      if fast then emit1 ctx Opcode.MUFU_RCP t [ xo ]
      else begin
        let r0 = fresh_gpr ctx in
        emit1 ctx Opcode.MUFU_RCP r0 [ xo ];
        let e = fresh_gpr ctx in
        emit1 ctx Opcode.FFMA e [ xo; Operand.Reg r0; Operand.FImm (-1.0) ];
        emit1 ctx Opcode.FFMA t [ Operand.Reg e; Operand.Reg r0; Operand.Reg r0 ]
      end;
      Operand.Reg t
  | Expr.Exp ->
      let s = fresh_gpr ctx in
      emit1 ctx Opcode.FMUL s [ xo; Operand.FImm 1.4426950408889634 ];
      if fast then emit1 ctx Opcode.MUFU_EX2 t [ Operand.Reg s ]
      else begin
        let r0 = fresh_gpr ctx in
        emit1 ctx Opcode.MUFU_EX2 r0 [ Operand.Reg s ];
        emit1 ctx Opcode.FFMA t
          [ Operand.Reg r0; Operand.FImm 1.0; Operand.FImm 0.0 ]
      end;
      Operand.Reg t
  | Expr.Log ->
      let r0 = fresh_gpr ctx in
      emit1 ctx Opcode.MUFU_LG2 r0 [ xo ];
      if fast then
        emit1 ctx Opcode.FMUL t [ Operand.Reg r0; Operand.FImm 0.6931471805599453 ]
      else begin
        let r1 = fresh_gpr ctx in
        emit1 ctx Opcode.FMUL r1 [ Operand.Reg r0; Operand.FImm 0.6931471805599453 ];
        emit1 ctx Opcode.FFMA t
          [ Operand.Reg r1; Operand.FImm 1.0; Operand.FImm 0.0 ]
      end;
      Operand.Reg t
  | Expr.Sin | Expr.Cos ->
      let mufu = if op = Expr.Sin then Opcode.MUFU_SIN else Opcode.MUFU_COS in
      if fast then emit1 ctx mufu t [ xo ]
      else begin
        (* Range reduction before the SFU call. *)
        let k = fresh_gpr ctx in
        emit1 ctx Opcode.FMUL k [ xo; Operand.FImm 0.15915494309189535 ];
        let ki = fresh_gpr ctx in
        emit1 ctx Opcode.F2I ki [ Operand.Reg k ];
        let kf = fresh_gpr ctx in
        emit1 ctx Opcode.I2F kf [ Operand.Reg ki ];
        let red = fresh_gpr ctx in
        emit1 ctx Opcode.FFMA red
          [ Operand.Reg kf; Operand.FImm (-6.283185307179586); xo ];
        emit1 ctx mufu t [ Operand.Reg red ]
      end;
      Operand.Reg t

and gen_cond ctx (e : Expr.t) : Register.t =
  match e with
  | Expr.Cmp (op, x, y) ->
      let ty = type_of ctx x in
      let xo = gen_expr ctx x and yo = gen_expr ctx y in
      let p = fresh_pred ctx in
      let setp = if Dtype.is_float ty then Opcode.FSETP else Opcode.ISETP in
      emit1 ctx setp ~cmp:(cmp_of_ir op) p [ xo; yo ];
      p
  | _ ->
      let o = gen_expr ctx e in
      let p = fresh_pred ctx in
      emit1 ctx Opcode.ISETP ~cmp:Instruction.NE p [ o; Operand.Imm 0 ];
      p

(* ---- statement lowering ---- *)

(* Static (analyzer-visible) active-fraction guess for a thread-
   dependent two-way split; the simulator uses the Monte-Carlo profile
   instead. *)
let divergent_active = 0.5

let affine_or e fallback =
  match Affine.of_expr e with Some a -> a | None -> fallback

let rec lower_stmts ctx stmts = List.iter (lower_stmt ctx) stmts

and lower_stmt ctx (s : Stmt.t) =
  match s with
  | Stmt.Assign (v, e) ->
      let ty = type_of ctx e in
      let r = var_reg ctx v ty in
      if expr_tainted ctx e then Hashtbl.replace ctx.tainted_vars v ();
      Hashtbl.replace ctx.defs v (inline_defs ctx e);
      let (_ : Operand.t) = gen_expr ~dst:r ctx e in
      ()
  | Stmt.Store (a, idxs, e) ->
      let vo = gen_expr ctx e in
      let addr = gen_address ctx a idxs in
      emit ctx (Instruction.make Opcode.STG [ addr; vo ])
  | Stmt.Sync -> emit ctx (Instruction.make Opcode.BAR [ Operand.Imm 0 ])
  | Stmt.If (c, t_branch, e_branch) -> lower_if ctx c t_branch e_branch
  | Stmt.For l when l.Stmt.kind = Stmt.Parallel ->
      invalid_arg "Lowering: nested parallel loop"
  | Stmt.For l -> lower_seq_loop ctx l

and lower_if ctx c t_branch e_branch =
  let tainted = expr_tainted ctx c in
  let p = gen_cond ctx c in
  let then_l = new_label ctx in
  let else_l = if e_branch = [] then None else Some (new_label ctx) in
  let join_l = new_label ctx in
  let outer_weight = ctx.weight and outer_active = ctx.active in
  let parent = ctx.agg_fn in
  (* Exact P(condition) at size n, via Monte Carlo over the parallel
     index (the simulator's ground truth). *)
  let prob =
    let cond = inline_defs ctx c in
    match ctx.parallel_var with
    | Some pv ->
        let lo, hi =
          match Hashtbl.find_opt ctx.defs ("__bounds_" ^ pv) with
          | Some (Expr.Bin (Expr.Sub, hi, lo)) -> (lo, hi)
          | Some _ | None -> (Expr.Int 0, Expr.Size)
        in
        memo1 (fun n -> Profile.monte_carlo_prob ~cond ~var:pv ~lo ~hi ~n)
    | None -> fun _ -> 0.5
  in
  let branch_weight = Weight.scale 0.5 outer_weight in
  let branch_active =
    if tainted then outer_active *. divergent_active else outer_active
  in
  let agg_of ~taken n =
    let pa = parent n in
    let p_then = Float.max 0.0 (Float.min 1.0 (prob n)) in
    let p_side = if taken then p_then else 1.0 -. p_then in
    if tainted then begin
      (* A warp issues this side iff any lane takes it. *)
      let q = 1.0 -. ((1.0 -. p_side) ** 32.0) in
      if q <= 0.0 then { Profile.execs = 0.0; lanes = 1.0 }
      else
        {
          Profile.execs = pa.Profile.execs *. q;
          lanes = Float.min 1.0 (pa.Profile.lanes *. p_side /. q);
        }
    end
    else { pa with Profile.execs = pa.Profile.execs *. p_side }
  in
  let false_target = Option.value ~default:join_l else_l in
  end_block ctx
    (Basic_block.Cond_branch
       {
         pred = { Instruction.negated = false; reg = p };
         if_true = then_l;
         if_false = false_target;
       });
  start_block ctx then_l ~weight:branch_weight ~active:branch_active
    ~agg:(agg_of ~taken:true);
  lower_stmts ctx t_branch;
  end_block ctx (Basic_block.Jump join_l);
  (match else_l with
  | Some l ->
      start_block ctx l ~weight:branch_weight ~active:branch_active
        ~agg:(agg_of ~taken:false);
      lower_stmts ctx e_branch;
      end_block ctx (Basic_block.Jump join_l)
  | None -> ());
  start_block ctx join_l ~weight:outer_weight ~active:outer_active ~agg:parent

and lower_seq_loop ctx (l : Stmt.loop) =
  let u = if l.Stmt.step = 1 then ctx.params.Params.unroll else 1 in
  let outer_weight = ctx.weight and outer_active = ctx.active in
  let parent = ctx.agg_fn in
  let lo_aff = affine_or l.Stmt.lo Weight.zero in
  let hi_aff = affine_or l.Stmt.hi (Weight.linear 1.0) in
  let trips_w = Affine.trip_count ~lo:lo_aff ~hi:hi_aff ~step:l.Stmt.step in
  (* Exact iteration count at size n (bounds are uniform integers). *)
  let exact_range =
    memo1 (fun n ->
        let lo = Weight.eval lo_aff ~n and hi = Weight.eval hi_aff ~n in
        max 0 (int_of_float (Float.round (hi -. lo)) / l.Stmt.step))
  in
  let v = l.Stmt.var in
  let rv = var_reg ctx v Dtype.I32 in
  Hashtbl.remove ctx.defs v;
  if expr_tainted ctx l.Stmt.lo || expr_tainted ctx l.Stmt.hi then
    Hashtbl.replace ctx.tainted_vars v ();
  let lo_op = gen_expr ctx l.Stmt.lo in
  let hi_op = gen_expr ctx l.Stmt.hi in
  let hi_r = as_reg ctx hi_op in
  emit1 ctx Opcode.MOV rv [ lo_op ];
  if u = 1 then begin
    let head_l = new_label ctx and body_l = new_label ctx in
    let exit_l = new_label ctx in
    end_block ctx (Basic_block.Jump head_l);
    let head_weight = Weight.add (Weight.mul outer_weight trips_w) outer_weight in
    let head_agg n =
      let pa = parent n in
      { pa with Profile.execs = pa.Profile.execs *. float_of_int (exact_range n + 1) }
    in
    let body_agg n =
      let pa = parent n in
      { pa with Profile.execs = pa.Profile.execs *. float_of_int (exact_range n) }
    in
    start_block ctx head_l ~weight:head_weight ~active:outer_active ~agg:head_agg;
    let p = fresh_pred ctx in
    emit1 ctx Opcode.ISETP ~cmp:Instruction.GE p [ Operand.Reg rv; Operand.Reg hi_r ];
    end_block ctx
      (Basic_block.Cond_branch
         {
           pred = { Instruction.negated = false; reg = p };
           if_true = exit_l;
           if_false = body_l;
         });
    start_block ctx body_l
      ~weight:(Weight.mul outer_weight trips_w)
      ~active:outer_active ~agg:body_agg;
    lower_stmts ctx l.Stmt.body;
    emit1 ctx Opcode.IADD rv [ Operand.Reg rv; Operand.Imm l.Stmt.step ];
    end_block ctx (Basic_block.Jump head_l);
    start_block ctx exit_l ~weight:outer_weight ~active:outer_active ~agg:parent
  end
  else begin
    (* Guarded main loop of stride u plus stride-1 remainder. *)
    let main_head = new_label ctx and main_body = new_label ctx in
    let rem_head = new_label ctx and rem_body = new_label ctx in
    let exit_l = new_label ctx in
    end_block ctx (Basic_block.Jump main_head);
    let main_trips_w = Weight.scale (1.0 /. float_of_int u) trips_w in
    let rem_trips_w = Weight.const (float_of_int (u - 1) /. 2.0) in
    let main_trips n = exact_range n / u in
    let rem_trips n = exact_range n - (main_trips n * u) in
    let scaled f n =
      let pa = parent n in
      { pa with Profile.execs = pa.Profile.execs *. float_of_int (f n) }
    in
    start_block ctx main_head
      ~weight:(Weight.add (Weight.mul outer_weight main_trips_w) outer_weight)
      ~active:outer_active
      ~agg:(scaled (fun n -> main_trips n + 1));
    let last = fresh_gpr ctx in
    emit1 ctx Opcode.IADD last [ Operand.Reg rv; Operand.Imm (u - 1) ];
    let p = fresh_pred ctx in
    emit1 ctx Opcode.ISETP ~cmp:Instruction.GE p
      [ Operand.Reg last; Operand.Reg hi_r ];
    end_block ctx
      (Basic_block.Cond_branch
         {
           pred = { Instruction.negated = false; reg = p };
           if_true = rem_head;
           if_false = main_body;
         });
    start_block ctx main_body
      ~weight:(Weight.mul outer_weight main_trips_w)
      ~active:outer_active ~agg:(scaled main_trips);
    for k = 0 to u - 1 do
      Hashtbl.replace ctx.var_offsets v k;
      lower_stmts ctx l.Stmt.body
    done;
    Hashtbl.remove ctx.var_offsets v;
    emit1 ctx Opcode.IADD rv [ Operand.Reg rv; Operand.Imm u ];
    end_block ctx (Basic_block.Jump main_head);
    start_block ctx rem_head
      ~weight:(Weight.add (Weight.mul outer_weight rem_trips_w) outer_weight)
      ~active:outer_active
      ~agg:(scaled (fun n -> rem_trips n + 1));
    let p2 = fresh_pred ctx in
    emit1 ctx Opcode.ISETP ~cmp:Instruction.GE p2
      [ Operand.Reg rv; Operand.Reg hi_r ];
    end_block ctx
      (Basic_block.Cond_branch
         {
           pred = { Instruction.negated = false; reg = p2 };
           if_true = exit_l;
           if_false = rem_body;
         });
    start_block ctx rem_body
      ~weight:(Weight.mul outer_weight rem_trips_w)
      ~active:outer_active ~agg:(scaled rem_trips);
    lower_stmts ctx l.Stmt.body;
    emit1 ctx Opcode.IADD rv [ Operand.Reg rv; Operand.Imm 1 ];
    end_block ctx (Basic_block.Jump rem_head);
    start_block ctx exit_l ~weight:outer_weight ~active:outer_active ~agg:parent
  end

(* ---- kernel-level lowering ---- *)

let lower_parallel_loop ctx (l : Stmt.loop) ~total_threads =
  let lo_aff = affine_or l.Stmt.lo Weight.zero in
  let hi_aff = affine_or l.Stmt.hi (Weight.linear 1.0) in
  let trips = Affine.trip_count ~lo:lo_aff ~hi:hi_aff ~step:l.Stmt.step in
  let per_thread = Weight.scale (1.0 /. float_of_int total_threads) trips in
  let v = l.Stmt.var in
  ctx.parallel_var <- Some v;
  Hashtbl.replace ctx.defs ("__bounds_" ^ v)
    (Expr.Bin (Expr.Sub, l.Stmt.hi, l.Stmt.lo));
  let rv = var_reg ctx v Dtype.I32 in
  Hashtbl.replace ctx.tainted_vars v ();
  (* Exact per-warp grid-stride issue counts. *)
  let tc = ctx.params.Params.threads_per_block in
  let bc = ctx.params.Params.block_count in
  let exact = memo1 (fun n ->
      let r =
        max 0 (int_of_float (Float.round (Weight.eval trips ~n)))
      in
      let t = tc * bc in
      let issues = ref 0 in
      for b = 0 to bc - 1 do
        for wi = 0 to ctx.warps_per_block - 1 do
          let g0 = (b * tc) + (wi * 32) in
          if g0 < r then issues := !issues + ((r - g0 + t - 1) / t)
        done
      done;
      (r, !issues))
  in
  ctx.work_items_fn <- (fun n -> fst (exact n));
  let parent = ctx.agg_fn in
  let body_agg n =
    let pa = parent n in
    let r, issues = exact n in
    if issues = 0 then { Profile.execs = 0.0; lanes = 1.0 }
    else
      {
        Profile.execs = pa.Profile.lanes *. float_of_int issues;
        lanes = float_of_int r /. (32.0 *. float_of_int issues);
      }
  in
  let head_agg n =
    let pa = parent n in
    let _, issues = exact n in
    { pa with Profile.execs = float_of_int (issues + ctx.total_warps) }
  in
  (* i = lo + global_id; stride = ntid * nctaid *)
  let gid = fresh_gpr ctx in
  let tid = fresh_gpr ctx and ntid = fresh_gpr ctx in
  let ctaid = fresh_gpr ctx and nctaid = fresh_gpr ctx in
  emit1 ctx Opcode.MOV tid [ Operand.Special Operand.Tid_x ];
  emit1 ctx Opcode.MOV ntid [ Operand.Special Operand.Ntid_x ];
  emit1 ctx Opcode.MOV ctaid [ Operand.Special Operand.Ctaid_x ];
  emit1 ctx Opcode.MOV nctaid [ Operand.Special Operand.Nctaid_x ];
  emit1 ctx Opcode.IMAD gid [ Operand.Reg ctaid; Operand.Reg ntid; Operand.Reg tid ];
  let stride = fresh_gpr ctx in
  emit1 ctx Opcode.IMUL stride [ Operand.Reg ntid; Operand.Reg nctaid ];
  let lo_op = gen_expr ctx l.Stmt.lo in
  let hi_op = gen_expr ctx l.Stmt.hi in
  let hi_r = as_reg ctx hi_op in
  emit1 ctx Opcode.IADD rv [ lo_op; Operand.Reg gid ];
  let head_l = new_label ctx and body_l = new_label ctx in
  let exit_l = new_label ctx in
  end_block ctx (Basic_block.Jump head_l);
  start_block ctx head_l
    ~weight:(Weight.add per_thread Weight.one)
    ~active:1.0 ~agg:head_agg;
  let p = fresh_pred ctx in
  emit1 ctx Opcode.ISETP ~cmp:Instruction.GE p
    [ Operand.Reg rv; Operand.Reg hi_r ];
  end_block ctx
    (Basic_block.Cond_branch
       {
         pred = { Instruction.negated = false; reg = p };
         if_true = exit_l;
         if_false = body_l;
       });
  start_block ctx body_l ~weight:per_thread ~active:1.0 ~agg:body_agg;
  lower_stmts ctx l.Stmt.body;
  emit1 ctx Opcode.IADD rv [ Operand.Reg rv; Operand.Reg stride ];
  end_block ctx (Basic_block.Jump head_l);
  start_block ctx exit_l ~weight:Weight.one ~active:1.0 ~agg:parent

let lower kernel gpu params =
  (match Typecheck.kernel kernel with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Lowering: ill-typed kernel: " ^ msg));
  (match Params.validate gpu params with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Lowering: invalid parameters: " ^ msg));
  let warps_per_block = (params.Params.threads_per_block + 31) / 32 in
  let total_warps = params.Params.block_count * warps_per_block in
  let entry_agg _ = { Profile.execs = float_of_int total_warps; lanes = 1.0 } in
  let ctx =
    {
      kernel;
      params;
      blocks_rev = [];
      label = "";
      instrs_rev = [];
      weight = Weight.one;
      active = 1.0;
      next_label = 0;
      next_gpr = 0;
      next_pred = 0;
      var_regs = Hashtbl.create 16;
      var_types = Hashtbl.create 16;
      var_offsets = Hashtbl.create 4;
      tainted_vars = Hashtbl.create 8;
      defs = Hashtbl.create 16;
      array_bases = Hashtbl.create 8;
      n_reg = Register.gpr 0;
      smem_dynamic = 0;
      total_warps;
      warps_per_block;
      parallel_var = None;
      work_items_fn = (fun _ -> 0);
      agg_fn = entry_agg;
      count_rules = [];
    }
  in
  let entry_l = new_label ctx in
  start_block ctx entry_l ~weight:Weight.one ~active:1.0 ~agg:entry_agg;
  (* Kernel prologue: parameter loads.  Real SASS reads the constant
     bank; we model it as LDC from a zero param pointer. *)
  let pbase = fresh_gpr ctx in
  emit1 ctx Opcode.MOV pbase [ Operand.Imm 0 ];
  let n_reg = fresh_gpr ctx in
  emit1 ctx Opcode.LDC n_reg
    [ Operand.Addr { space = Operand.Param; base = pbase; offset = 0 } ];
  ctx.n_reg <- n_reg;
  List.iteri
    (fun i (decl : Kernel.array_decl) ->
      let r = fresh_gpr ctx in
      emit1 ctx Opcode.LDC r
        [
          Operand.Addr
            { space = Operand.Param; base = pbase; offset = 8 + (8 * i) };
        ];
      Hashtbl.replace ctx.array_bases decl.Kernel.array_name r)
    kernel.Kernel.arrays;
  (* Shared-memory staging (SC > 1): allocate the buffer and prime it.
     The per-access latency benefit is modelled by the simulator; the
     static side of the variant pays the occupancy pressure. *)
  if params.Params.staging > 1 then begin
    ctx.smem_dynamic <-
      params.Params.staging * params.Params.threads_per_block * 4;
    let sbase = fresh_gpr ctx in
    emit1 ctx Opcode.MOV sbase [ Operand.Imm 0 ];
    for k = 0 to params.Params.staging - 1 do
      emit ctx
        (Instruction.make Opcode.STS
           [
             Operand.Addr
               { space = Operand.Shared; base = sbase; offset = 4 * k };
             Operand.Imm 0;
           ])
    done;
    emit ctx (Instruction.make Opcode.BAR [ Operand.Imm 0 ])
  end;
  let total_threads = Params.total_threads params in
  List.iter
    (fun stmt ->
      match stmt with
      | Stmt.For l when l.Stmt.kind = Stmt.Parallel ->
          lower_parallel_loop ctx l ~total_threads
      | other -> lower_stmt ctx other)
    kernel.Kernel.body;
  end_block ctx Basic_block.Exit;
  let program =
    Program.make ~name:kernel.Kernel.name ~target:gpu.Gat_arch.Gpu.cc
      ~regs_per_thread:0 ~smem_static:0 ~smem_dynamic:ctx.smem_dynamic
      (List.rev ctx.blocks_rev)
  in
  let rules = List.rev ctx.count_rules in
  let block_counts =
    memo1 (fun n -> List.map (fun (label, f) -> (label, f n)) rules)
  in
  let profile =
    {
      Profile.total_warps;
      warps_per_block;
      work_items = ctx.work_items_fn;
      block_counts;
    }
  in
  (program, profile)
